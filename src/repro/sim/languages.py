"""Language characteristics (Table 3) and calibrated cost profiles.

:class:`LanguageProfile` has two parts:

* the qualitative facts of Table 3 (race freedom, threading model, paradigm,
  memory sharing, approach), reproduced verbatim; and
* a small set of per-operation cost constants used by the performance model.
  The constants are calibrated so that, at the paper's problem sizes, the
  model lands in the neighbourhood of the published measurements; their
  *ratios* encode the documented causes (Erlang copies all data and uses a
  list representation, Haskell pays STM bookkeeping on every shared
  operation, C++/TBB uses OS threads with expensive context switches but has
  free shared memory, SCOOP/Qs and Go use lightweight threads, ...).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List


@dataclass(frozen=True)
class LanguageProfile:
    """Qualitative characteristics + calibrated cost constants of a language."""

    name: str
    display: str
    # --- Table 3 columns -------------------------------------------------
    races: str            # "possible" | "none"
    threads: str          # "OS" | "light"
    paradigm: str         # "Imperative" | "Functional" | "O-O"
    memory: str           # "Shared" | "STM" | "Non-shared"
    approach: str
    # --- cost constants (seconds per unit) --------------------------------
    compute_factor: float          # sequential slowdown vs. C++ on array code
    copy_cost_per_element: float   # cost to move one element between threads
    context_switch_cost: float     # cost of one thread hand-off
    coordination_op_cost: float    # cost of one shared-state operation
    spawn_cost: float              # cost of creating a worker
    #: extra multiplier applied to every shared operation (STM bookkeeping)
    transaction_overhead: float = 1.0
    #: fraction of parallel work that is effectively serialised by the
    #: runtime (GC pauses, scheduler contention); grows with thread count
    scheduler_drag: float = 0.0

    def table3_row(self) -> Dict[str, str]:
        return {
            "Language": self.display,
            "Races": self.races,
            "Threads": self.threads,
            "Paradigm": self.paradigm,
            "Memory": self.memory,
            "Approach": self.approach,
        }


LANGUAGES: Dict[str, LanguageProfile] = {
    "cxx": LanguageProfile(
        name="cxx",
        display="C++/TBB",
        races="possible",
        threads="OS",
        paradigm="Imperative",
        memory="Shared",
        approach="Skeletons/traditional",
        compute_factor=1.0,
        copy_cost_per_element=0.0,            # shared memory: no copies
        context_switch_cost=50e-6,            # OS threads
        coordination_op_cost=0.22e-6,         # native atomics / TBB mutex
        spawn_cost=80e-6,
        scheduler_drag=0.002,
    ),
    "go": LanguageProfile(
        name="go",
        display="Go",
        races="possible",
        threads="light",
        paradigm="Imperative",
        memory="Shared",
        approach="Goroutines/channels",
        compute_factor=1.55,
        copy_cost_per_element=1e-10,          # shared slices: headers only
        context_switch_cost=15e-6,
        coordination_op_cost=0.27e-6,
        spawn_cost=3e-6,
        scheduler_drag=0.05,                  # chain degrades past 8 cores
    ),
    "haskell": LanguageProfile(
        name="haskell",
        display="Haskell",
        races="none",
        threads="light",
        paradigm="Functional",
        memory="STM",
        approach="STM/Repa",
        compute_factor=2.3,
        copy_cost_per_element=2e-10,          # Repa arrays are shared
        context_switch_cost=20e-6,
        coordination_op_cost=1.3e-6,          # already includes STM bookkeeping
        spawn_cost=2e-6,
        transaction_overhead=1.0,
        scheduler_drag=0.03,                  # stop-the-world GC
    ),
    "erlang": LanguageProfile(
        name="erlang",
        display="Erlang",
        races="none",
        threads="light",
        paradigm="Functional",
        memory="Non-shared",
        approach="Actors",
        compute_factor=9.0,                   # list-based matrices, no HiPE
        copy_cost_per_element=6e-8,           # all data copied between processes
        context_switch_cost=2e-6,
        coordination_op_cost=7.0e-6,          # every interaction is a message
        spawn_cost=1e-6,
        scheduler_drag=0.01,
    ),
    "qs": LanguageProfile(
        name="qs",
        display="SCOOP/Qs",
        races="none",
        threads="light",
        paradigm="O-O",
        memory="Non-shared",
        approach="Active Objects",
        compute_factor=1.05,                  # compiled via LLVM; compute competitive
        copy_cost_per_element=8e-9,           # client-pulled queries (optimized)
        context_switch_cost=9e-6,
        coordination_op_cost=0.73e-6,
        spawn_cost=5e-6,
        scheduler_drag=0.005,
    ),
}

#: order used in the paper's tables and figures
LANGUAGE_ORDER: List[str] = ["cxx", "erlang", "go", "haskell", "qs"]


def language_table() -> List[Dict[str, str]]:
    """Table 3 of the paper, as a list of rows."""
    return [LANGUAGES[name].table3_row() for name in ("cxx", "go", "haskell", "erlang", "qs")]


def get_language(name: str) -> LanguageProfile:
    key = name.lower()
    aliases = {"c++": "cxx", "c++/tbb": "cxx", "scoop/qs": "qs", "scoop": "qs"}
    key = aliases.get(key, key)
    if key not in LANGUAGES:
        raise ValueError(f"unknown language {name!r}; choose from {sorted(LANGUAGES)}")
    return LANGUAGES[key]
