"""Performance model of the Cowichan tasks across languages and core counts.

The model reproduces the structure of the paper's Table 4 / Figs. 18–19:

``total(lang, task, p) = compute(lang, task, p) + communication(lang, task)``

* *compute* is the task's sequential work (calibrated in "C++-seconds" from
  the paper's single-core C++ measurements), scaled by the language's
  ``compute_factor``, divided by the effective parallelism (cores minus the
  language's scheduler drag), plus worker-spawn overhead;
* *communication* is the number of elements that must cross region/process
  boundaries times the language's per-element copy cost.  It does not shrink
  with more cores — the master serialises it — which is exactly why the
  SCOOP/Qs and Erlang totals plateau in the paper while their compute-only
  curves keep scaling.

A small table of per-(task, language) adjustments captures the three
documented anomalies: Haskell's ``randmat`` (serial concatenation +
stop-the-world GC), Erlang's ``winnow`` (speedup stuck around 2–3×) and Go's
``chain`` (performance degrades past 8 cores).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from repro.sim.languages import LANGUAGE_ORDER, LanguageProfile, get_language
from repro.workloads.params import PAPER_PARALLEL, ParallelSizes


# ----------------------------------------------------------------------------
# task work profiles
# ----------------------------------------------------------------------------
@dataclass(frozen=True)
class TaskProfile:
    """How much work and communication one Cowichan task involves."""

    name: str
    #: sequential compute work in seconds-on-the-paper's-C++ per element
    cxx_seconds_per_element: float
    #: number of "elements" of compute work
    elements: Callable[[ParallelSizes], float]
    #: number of elements crossing thread/region boundaries
    comm_elements: Callable[[ParallelSizes], float]

    def compute_work(self, sizes: ParallelSizes) -> float:
        return self.cxx_seconds_per_element * self.elements(sizes)


PARALLEL_TASKS: Dict[str, TaskProfile] = {
    # calibrated against Table 4's single-thread C++ times at nr = nw = 10,000
    "randmat": TaskProfile("randmat", 0.44e-8, lambda s: s.nr * s.nr, lambda s: 0.25 * s.nr * s.nr),
    "thresh": TaskProfile("thresh", 1.00e-8, lambda s: s.nr * s.nr, lambda s: 2.0 * s.nr * s.nr),
    "winnow": TaskProfile("winnow", 2.04e-8, lambda s: s.nr * s.nr, lambda s: 2.2 * s.nr * s.nr),
    "outer": TaskProfile("outer", 1.59e-8, lambda s: s.nw * s.nw, lambda s: 0.9 * s.nw * s.nw),
    "product": TaskProfile("product", 0.44e-8, lambda s: s.nw * s.nw, lambda s: 1.2 * s.nw * s.nw),
    "chain": TaskProfile("chain", 5.51e-8, lambda s: s.nr * s.nr,
                         # intermediate data stays on the workers: only the
                         # winnowed points / vectors move between stages
                         lambda s: 6.0 * s.nw),
}

#: per (task, language) structural adjustments documented in the paper
SPECIAL_CASES: Dict[tuple[str, str], Dict[str, float]] = {
    # Haskell randmat: par-based chunks concatenated sequentially + GC pauses
    ("randmat", "haskell"): {"serial_fraction": 0.30, "per_thread_penalty": 0.25},
    # Erlang winnow: unexplained cap around 2-3x in the paper
    ("winnow", "erlang"): {"serial_fraction": 0.40},
    # Go chain: performance decreases past 8 cores
    ("chain", "go"): {"per_thread_penalty": 0.035},
    # Go outer shows a milder version of the same effect in Table 4
    ("outer", "go"): {"per_thread_penalty": 0.02},
}


@dataclass(frozen=True)
class ParallelEstimate:
    """Modelled execution of one (task, language, threads) cell of Table 4."""

    task: str
    language: str
    threads: int
    total_seconds: float
    compute_seconds: float
    comm_seconds: float

    def row(self) -> Dict[str, object]:
        return {
            "task": self.task,
            "lang": self.language,
            "threads": self.threads,
            "total_s": round(self.total_seconds, 3),
            "compute_s": round(self.compute_seconds, 3),
            "comm_s": round(self.comm_seconds, 3),
        }


def _effective_parallelism(profile: LanguageProfile, threads: int) -> float:
    if threads <= 1:
        return 1.0
    return threads / (1.0 + profile.scheduler_drag * (threads - 1))


def simulate_parallel(task: str, language: str, threads: int,
                      sizes: ParallelSizes = PAPER_PARALLEL) -> ParallelEstimate:
    """Estimate total and compute time for one Table 4 cell."""
    if task not in PARALLEL_TASKS:
        raise ValueError(f"unknown parallel task {task!r}; choose from {sorted(PARALLEL_TASKS)}")
    if threads < 1:
        raise ValueError("threads must be >= 1")
    profile = get_language(language)
    work = PARALLEL_TASKS[task].compute_work(sizes) * profile.compute_factor
    special = SPECIAL_CASES.get((task, profile.name), {})
    serial_fraction = special.get("serial_fraction", 0.0)
    per_thread_penalty = special.get("per_thread_penalty", 0.0)

    serial_work = work * serial_fraction
    parallel_work = work - serial_work
    compute = serial_work + parallel_work / _effective_parallelism(profile, threads)
    compute += profile.spawn_cost * threads
    if per_thread_penalty and threads > 8:
        compute += work * per_thread_penalty * (threads - 8) / 8.0

    comm_elements = PARALLEL_TASKS[task].comm_elements(sizes)
    comm = comm_elements * profile.copy_cost_per_element
    return ParallelEstimate(
        task=task,
        language=profile.name,
        threads=threads,
        total_seconds=compute + comm,
        compute_seconds=compute,
        comm_seconds=comm,
    )


def simulate_parallel_sweep(tasks: Iterable[str] | None = None,
                            languages: Iterable[str] | None = None,
                            thread_counts: Iterable[int] = (1, 2, 4, 8, 16, 32),
                            sizes: ParallelSizes = PAPER_PARALLEL) -> List[ParallelEstimate]:
    """The full Table 4 sweep (every task x language x thread count)."""
    tasks = list(tasks) if tasks is not None else list(PARALLEL_TASKS)
    languages = list(languages) if languages is not None else list(LANGUAGE_ORDER)
    estimates: List[ParallelEstimate] = []
    for task in tasks:
        for language in languages:
            for threads in thread_counts:
                estimates.append(simulate_parallel(task, language, threads, sizes))
    return estimates


def speedup_curve(task: str, language: str,
                  thread_counts: Iterable[int] = (1, 2, 4, 8, 16, 32),
                  sizes: ParallelSizes = PAPER_PARALLEL,
                  compute_only: bool = False) -> List[tuple[int, float]]:
    """Speedup over the single-core estimate (the series plotted in Fig. 19)."""
    counts = sorted(set(thread_counts) | {1})
    base = simulate_parallel(task, language, 1, sizes)
    base_time = base.compute_seconds if compute_only else base.total_seconds
    curve = []
    for threads in counts:
        est = simulate_parallel(task, language, threads, sizes)
        time = est.compute_seconds if compute_only else est.total_seconds
        curve.append((threads, base_time / time))
    return curve
