"""Performance model of the coordination benchmarks across languages.

Each benchmark is reduced to the coordination operations it performs (shared
-state operations, messages/hand-offs, context switches); a language's time
is the operation counts combined with its calibrated per-operation costs
(:mod:`repro.sim.languages`).  The structure encodes the paper's findings:

* ``threadring`` and ``condition`` are essentially single-threaded
  context-switching stress tests — OS-thread languages (C++/TBB) pay their
  expensive switches on every hop, lightweight-thread runtimes do not;
* ``mutex`` and ``prodcons`` are dominated by the per-operation cost of the
  shared resource — native atomics win, STM pays its bookkeeping on every
  access, actors pay a message per interaction;
* ``chameneos`` mixes both: two messages plus a shared-state update per
  meeting.

Operation counts are exact functions of the benchmark parameters, so the
model can be evaluated at the paper's sizes or any other size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List

from repro.sim.languages import LANGUAGE_ORDER, LanguageProfile, get_language
from repro.workloads.params import ConcurrentSizes, PAPER_CONCURRENT


@dataclass(frozen=True)
class OperationCounts:
    """Coordination operations one benchmark performs (exact counts)."""

    shared_ops: float = 0.0        # operations on shared state (lock/STM/handler)
    handoffs: float = 0.0          # mandatory thread-to-thread hand-offs
    messages: float = 0.0          # payload-carrying messages between threads
    #: how strongly the benchmark serialises on one resource (0..1); a fully
    #: serialised benchmark gains nothing from extra cores
    serialisation: float = 1.0


def _mutex_ops(sizes: ConcurrentSizes) -> OperationCounts:
    total = sizes.n * sizes.m
    return OperationCounts(shared_ops=total, handoffs=0.0, messages=0.0, serialisation=1.0)


def _prodcons_ops(sizes: ConcurrentSizes) -> OperationCounts:
    produced = sizes.n * sizes.m
    return OperationCounts(shared_ops=2 * produced, messages=produced, serialisation=1.0)


def _condition_ops(sizes: ConcurrentSizes) -> OperationCounts:
    increments = 2 * sizes.n * sizes.m
    # every increment requires waking the opposite-parity group: a hand-off
    return OperationCounts(shared_ops=increments, handoffs=increments, serialisation=1.0)


def _threadring_ops(sizes: ConcurrentSizes) -> OperationCounts:
    return OperationCounts(shared_ops=0.0, handoffs=sizes.nt, messages=sizes.nt, serialisation=1.0)


def _chameneos_ops(sizes: ConcurrentSizes) -> OperationCounts:
    # one meeting = two creatures interacting with the meeting place + one
    # hand-off between them
    return OperationCounts(shared_ops=2 * sizes.nc, handoffs=sizes.nc, messages=sizes.nc,
                           serialisation=1.0)


CONCURRENT_SIM_TASKS: Dict[str, Callable[[ConcurrentSizes], OperationCounts]] = {
    "chameneos": _chameneos_ops,
    "condition": _condition_ops,
    "mutex": _mutex_ops,
    "prodcons": _prodcons_ops,
    "threadring": _threadring_ops,
}

#: how heavily each benchmark weighs the three cost components per language
#: class; these reflect the mechanisms the paper discusses (e.g. C++ condition
#: variables thrash on `condition`, Qs private queues make wake-ups cheap).
_CONDVAR_PENALTY: Dict[str, float] = {
    # fraction of a full context switch charged per wake-up in `condition`:
    # OS condition variables force kernel round-trips, lightweight runtimes
    # just resume the next task, and a Qs wake-up is the handler moving to
    # the next private queue.
    "cxx": 0.24,
    "go": 0.30,
    "haskell": 0.90,
    "erlang": 0.15,
    "qs": 0.05,
}

#: `condition` hammers one shared variable with strictly alternating updates;
#: message-per-interaction runtimes batch much better there than on `mutex`'s
#: free-for-all (Erlang is the paper's stand-out example).
_CONDITION_SHARED_FACTOR: Dict[str, float] = {
    "cxx": 1.0,
    "go": 1.0,
    "haskell": 1.0,
    "erlang": 0.2,
    "qs": 1.0,
}

#: threadring: calibrated cost of delivering the token to the next node, on
#: top of the context switch (channel/MVar/mailbox/private-queue machinery).
#: Haskell's MVar chain is the paper's stand-out: nearly 100 microseconds per
#: hop once the runtime has to keep re-blocking the whole ring.
_RING_HOP_COST: Dict[str, float] = {
    "cxx": 7.0e-6,
    "go": 8.0e-6,
    "haskell": 75.0e-6,
    "erlang": 3.5e-6,
    "qs": 0.8e-6,
}

#: chameneos: calibrated cost of one complete meeting (two creatures paired,
#: colours mixed, both notified), in seconds.  The enormous spread is the
#: paper's own observation: C++ resolves a meeting with a couple of atomic
#: operations while Haskell pays STM retries on every attempt.
_MEETING_COST: Dict[str, float] = {
    "cxx": 0.064e-6,
    "go": 0.48e-6,
    "haskell": 12.4e-6,
    "erlang": 1.73e-6,
    "qs": 0.94e-6,
}


@dataclass(frozen=True)
class ConcurrentEstimate:
    """Modelled execution of one Table 5 cell."""

    task: str
    language: str
    total_seconds: float

    def row(self) -> Dict[str, object]:
        return {"task": self.task, "lang": self.language, "total_s": round(self.total_seconds, 3)}


def simulate_concurrent(task: str, language: str,
                        sizes: ConcurrentSizes = PAPER_CONCURRENT) -> ConcurrentEstimate:
    """Estimate the wall-clock time of one coordination benchmark."""
    if task not in CONCURRENT_SIM_TASKS:
        raise ValueError(f"unknown concurrent task {task!r}; choose from {sorted(CONCURRENT_SIM_TASKS)}")
    profile: LanguageProfile = get_language(language)
    ops = CONCURRENT_SIM_TASKS[task](sizes)

    if task == "chameneos":
        # a meeting is a single calibrated unit (see _MEETING_COST)
        total = ops.messages * _MEETING_COST[profile.name]
        return ConcurrentEstimate(task=task, language=profile.name, total_seconds=total)

    shared_cost = ops.shared_ops * profile.coordination_op_cost * profile.transaction_overhead
    handoff_cost = ops.handoffs * profile.context_switch_cost
    message_cost = ops.messages * (profile.copy_cost_per_element * 8 + profile.coordination_op_cost)
    if task == "condition":
        handoff_cost *= _CONDVAR_PENALTY[profile.name]
        shared_cost *= _CONDITION_SHARED_FACTOR[profile.name]
    if task == "threadring":
        # every hop is a mandatory context switch plus the per-hop delivery
        # cost of the language's channel/mailbox machinery
        handoff_cost = ops.handoffs * profile.context_switch_cost
        message_cost = ops.messages * _RING_HOP_COST[profile.name]
        shared_cost = 0.0

    total = shared_cost + handoff_cost + message_cost
    return ConcurrentEstimate(task=task, language=profile.name, total_seconds=total)


def simulate_concurrent_sweep(tasks: Iterable[str] | None = None,
                              languages: Iterable[str] | None = None,
                              sizes: ConcurrentSizes = PAPER_CONCURRENT) -> List[ConcurrentEstimate]:
    """The full Table 5 sweep."""
    tasks = list(tasks) if tasks is not None else list(CONCURRENT_SIM_TASKS)
    languages = list(languages) if languages is not None else list(LANGUAGE_ORDER)
    return [simulate_concurrent(task, language, sizes) for task in tasks for language in languages]
