"""Runtime configuration: optimization levels of the SCOOP/Qs runtime.

The paper evaluates five configurations (Section 4):

* ``NONE``     -- no optimizations: lock-based handler protocol, every query
                  is packaged, shipped to the handler and synchronised.
* ``DYNAMIC``  -- dynamic sync coalescing (Section 3.4.1): the private queue
                  remembers whether the handler is already synced and skips
                  redundant round trips.
* ``STATIC``   -- static sync coalescing (Section 3.4.2): an ahead-of-time
                  dataflow pass removes provably-redundant sync operations.
* ``QOQ``      -- the queue-of-queues handler protocol (Section 2.3) without
                  any sync coalescing.
* ``ALL``      -- everything together (the shipping configuration).

:class:`QsConfig` decomposes these named levels into independent feature
flags so the runtime, the compiler and the simulator all agree on what each
level means.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # no runtime import: config must stay dependency-free
    from repro.backends import BackendSpec  # noqa: F401


class OptimizationLevel(enum.Enum):
    """Named optimization configurations evaluated in the paper."""

    NONE = "none"
    DYNAMIC = "dynamic"
    STATIC = "static"
    QOQ = "qoq"
    ALL = "all"

    @classmethod
    def parse(cls, value: "OptimizationLevel | str") -> "OptimizationLevel":
        if isinstance(value, OptimizationLevel):
            return value
        try:
            return cls(str(value).lower())
        except ValueError as exc:  # pragma: no cover - defensive
            valid = ", ".join(level.value for level in cls)
            raise ValueError(f"unknown optimization level {value!r}; expected one of {valid}") from exc


#: Order in which the paper reports optimization columns.
LEVEL_ORDER = (
    OptimizationLevel.NONE,
    OptimizationLevel.DYNAMIC,
    OptimizationLevel.STATIC,
    OptimizationLevel.QOQ,
    OptimizationLevel.ALL,
)


@dataclass(frozen=True)
class QsConfig:
    """Feature flags controlling the runtime behaviour.

    Attributes
    ----------
    use_qoq:
        Use the queue-of-queues protocol (clients enqueue private queues
        without blocking).  When ``False`` the runtime behaves like the
        original lock-based SCOOP: a client must hold the handler's request
        lock for the whole separate block, serialising reservations.
    dynamic_sync_coalescing:
        Track the ``synced`` status of each private queue at runtime and
        elide redundant sync round trips (Section 3.4.1).
    static_sync_coalescing:
        Let the compiler pass remove statically-redundant sync instructions
        (Section 3.4.2).  Only meaningful for programs executed through
        :mod:`repro.compiler`.
    client_executed_queries:
        Execute the body of a query on the client after synchronising with
        the handler (the modified query rule of Section 3.2) rather than
        packaging it and shipping it to the handler.
    private_queue_cache:
        Reuse private queues across separate blocks instead of allocating a
        fresh one each time (Section 3.2).
    direct_handoff:
        After a sync, pass control directly from the handler to the waiting
        client instead of going through the global scheduler (Section 3.2).
    qoq_batch:
        Maximum number of requests a handler drains from a private queue per
        blocking acquisition (the batched fast path).  ``1`` restores the
        one-request-per-acquisition behaviour; the default amortises the
        per-request synchronisation cost on busy queues.  A mechanical
        dequeue optimization rather than a protocol change, it is enabled
        at every optimization level except ``NONE`` (which, true to its
        name, runs with nothing at all).
    backend:
        Execution backend the runtime uses: ``"threads"`` (OS threads,
        wall-clock time), ``"sim"`` (deterministic virtual time on the
        cooperative scheduler), ``"process"`` (one OS process per handler
        behind socket private queues; true multi-core parallelism),
        ``"async"`` (handlers and coroutine clients as asyncio tasks on
        one event loop; 10k+ client fan-in) or ``"process+async"`` (the
        hybrid composite: handlers in the process worker pool, clients as
        coroutine tasks across event loops).  Spec components are allowed
        — ``"sim:random:7"``, ``"process:4:json"``,
        ``"process+async:4:2:bin"`` — and a structured
        :class:`~repro.backends.BackendSpec` is accepted wherever a spec
        string is.  See :mod:`repro.backends`.
    sched_policy:
        Ready-queue scheduling policy of the simulated backend (ignored by
        the threaded backend, where the OS schedules): ``"fifo"`` (the
        deterministic default), ``"random"`` or ``"pct"``.  See
        :mod:`repro.sched.policy` and :mod:`repro.explore`.
    sched_seed:
        Seed for the randomized scheduling policies; each seed selects one
        reproducible schedule.
    """

    use_qoq: bool = True
    dynamic_sync_coalescing: bool = True
    static_sync_coalescing: bool = True
    client_executed_queries: bool = True
    private_queue_cache: bool = True
    direct_handoff: bool = True
    qoq_batch: int = 16
    backend: "str | BackendSpec" = "threads"
    sched_policy: str = "fifo"
    sched_seed: int = 0
    name: str = "all"
    extras: dict = field(default_factory=dict, compare=False)

    # ------------------------------------------------------------------
    # Named levels
    # ------------------------------------------------------------------
    @classmethod
    def from_level(cls, level: "OptimizationLevel | str") -> "QsConfig":
        """Build the feature-flag set corresponding to a paper column."""
        level = OptimizationLevel.parse(level)
        if level is OptimizationLevel.NONE:
            return cls(
                use_qoq=False,
                dynamic_sync_coalescing=False,
                static_sync_coalescing=False,
                client_executed_queries=False,
                private_queue_cache=False,
                direct_handoff=False,
                qoq_batch=1,
                name=level.value,
            )
        if level is OptimizationLevel.DYNAMIC:
            return cls(
                use_qoq=False,
                dynamic_sync_coalescing=True,
                static_sync_coalescing=False,
                client_executed_queries=True,
                private_queue_cache=False,
                direct_handoff=False,
                name=level.value,
            )
        if level is OptimizationLevel.STATIC:
            return cls(
                use_qoq=False,
                dynamic_sync_coalescing=False,
                static_sync_coalescing=True,
                client_executed_queries=True,
                private_queue_cache=False,
                direct_handoff=False,
                name=level.value,
            )
        if level is OptimizationLevel.QOQ:
            return cls(
                use_qoq=True,
                dynamic_sync_coalescing=False,
                static_sync_coalescing=False,
                client_executed_queries=False,
                private_queue_cache=True,
                direct_handoff=True,
                name=level.value,
            )
        # ALL
        return cls(name=OptimizationLevel.ALL.value)

    @classmethod
    def none(cls) -> "QsConfig":
        return cls.from_level(OptimizationLevel.NONE)

    @classmethod
    def all(cls) -> "QsConfig":
        return cls.from_level(OptimizationLevel.ALL)

    def with_(self, **kwargs) -> "QsConfig":
        """Return a copy with selected flags replaced."""
        return replace(self, **kwargs)

    @property
    def level(self) -> OptimizationLevel:
        """Best-effort mapping back to a named level (for reporting)."""
        for level in LEVEL_ORDER:
            if QsConfig.from_level(level).flag_tuple() == self.flag_tuple():
                return level
        return OptimizationLevel.ALL if self.use_qoq else OptimizationLevel.NONE

    def flag_tuple(self) -> tuple:
        return (
            self.use_qoq,
            self.dynamic_sync_coalescing,
            self.static_sync_coalescing,
            self.client_executed_queries,
            self.private_queue_cache,
            self.direct_handoff,
        )

    def describe(self) -> str:
        flags = []
        if self.use_qoq:
            flags.append("qoq")
        if self.dynamic_sync_coalescing:
            flags.append("dyn-sync")
        if self.static_sync_coalescing:
            flags.append("static-sync")
        if self.client_executed_queries:
            flags.append("client-query")
        if self.private_queue_cache:
            flags.append("pq-cache")
        if self.direct_handoff:
            flags.append("handoff")
        if self.qoq_batch > 1:
            flags.append(f"batch={self.qoq_batch}")
        summary = "+".join(flags) if flags else "no optimizations"
        backend = str(self.backend)  # a BackendSpec stringifies to its spec
        if self.sched_policy != "fifo":
            backend += f", sched={self.sched_policy}@{self.sched_seed}"
        return f"QsConfig({self.name}: {summary}, backend={backend})"
