"""Legacy setup shim.

The canonical metadata lives in ``pyproject.toml``; this file exists so the
package can be installed in environments without network access or the
``wheel`` package (``python setup.py develop`` / legacy editable installs).
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description="SCOOP/Qs: efficient and reasonable object-oriented concurrency (PPoPP 2015) reproduced in Python",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
)
