"""Tests for the executable operational semantics (Fig. 3, Sections 2.2–2.5)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import DeadlockError, SemanticsError
from repro.semantics.explorer import Explorer, check_handler_guarantee, collect_traces
from repro.semantics.programs import (
    fig1_two_clients,
    fig5_multi_reservation,
    fig5_nested_reservation,
    fig6_nested,
    fig6_with_queries,
    paper_programs,
    single_block,
)
from repro.semantics.rules import enabled_transitions
from repro.semantics.state import Configuration, HandlerState, initial_configuration
from repro.semantics.syntax import Call, Query, Separate, Seq, Skip, seq


class TestSyntax:
    def test_seq_builder(self):
        stmt = seq(Call("x", "a"), Call("x", "b"), Call("x", "c"))
        assert isinstance(stmt, Seq)
        assert str(stmt).count("x.") == 3

    def test_seq_of_nothing_is_skip(self):
        assert isinstance(seq(), Skip)

    def test_separate_validation(self):
        with pytest.raises(ValueError):
            Separate((), Skip())
        with pytest.raises(ValueError):
            Separate(("x", "x"), Skip())


class TestStateOperations:
    def test_last_occurrence_lookup_and_update(self):
        from repro.semantics.state import PrivateQueueEntry

        handler = HandlerState(
            "x",
            queue=(
                PrivateQueueEntry("c", 0, (Call("x", "old"),)),
                PrivateQueueEntry("d", 1),
                PrivateQueueEntry("c", 2),
            ),
        )
        assert handler.last_entry_for("c").entry_id == 2
        updated = handler.append_to_last("c", Skip())
        assert updated.queue[2].items == (Skip(),)
        assert updated.queue[0].items == (Call("x", "old"),)

    def test_append_without_registration_rejected(self):
        handler = HandlerState("x")
        with pytest.raises(SemanticsError):
            handler.append_to_last("c", Skip())

    def test_duplicate_handler_names_rejected(self):
        with pytest.raises(SemanticsError):
            Configuration((HandlerState("x"), HandlerState("x")))

    def test_initial_configuration_terminal_only_when_empty(self):
        config = initial_configuration({}, extra_handlers=["x"])
        assert config.terminal
        busy = initial_configuration({"c": Call("x", "f")}, extra_handlers=["x"])
        assert not busy.terminal


class TestRules:
    def test_call_outside_separate_rejected(self):
        config = initial_configuration({"c": Call("x", "f")}, extra_handlers=["x"])
        with pytest.raises(SemanticsError):
            enabled_transitions(config)

    def test_separate_registers_and_appends_end_call(self):
        config = initial_configuration({"c": Separate(("x",), Call("x", "f"))}, extra_handlers=["x"])
        (transition,) = [t for t in enabled_transitions(config) if t.rule == "separate"]
        supplier = transition.config.get("x")
        assert len(supplier.queue) == 1
        assert supplier.queue[0].client == "c"
        assert "end" in str(transition.config.get("c").program)

    def test_multi_reservation_registers_atomically(self):
        config = fig5_multi_reservation()
        transitions = [t for t in enabled_transitions(config) if t.rule == "separate"]
        assert len(transitions) == 2  # one per client, each reserving x and y together
        after = transitions[0].config
        assert len(after.get("x").queue) == 1
        assert len(after.get("y").queue) == 1

    def test_terminal_state_reached(self):
        config = single_block("c", "x", ["f", "g"])
        explorer = Explorer()
        result = explorer.explore(config)
        assert result.terminal_states
        assert not result.deadlock_states
        for terminal in result.terminal_states:
            assert terminal.get("x").queue == ()


class TestFig1:
    def test_exactly_the_two_interleavings_of_the_paper(self):
        traces = collect_traces(fig1_two_clients())
        orders = {tuple(e.feature for e in t if e.handler == "x") for t in traces}
        assert orders == {
            ("foo", "bar", "bar", "baz"),
            ("bar", "baz", "foo", "bar"),
        }

    def test_client_executed_query_variant_same_orders(self):
        traces = collect_traces(fig1_two_clients(client_executed_queries=True))
        orders = {tuple(e.feature for e in t if e.handler == "x") for t in traces}
        assert orders == {
            ("foo", "bar", "bar", "baz"),
            ("bar", "baz", "foo", "bar"),
        }

    def test_guarantee_holds_on_every_trace(self):
        for trace in collect_traces(fig1_two_clients(), kinds=("exec", "exec-client", "log")):
            check_handler_guarantee(trace)

    def test_guarantee_checker_detects_violations(self):
        from repro.semantics.rules import Event

        bad_trace = [
            Event(kind="log", handler="x", client="a", feature="f1", block=0),
            Event(kind="log", handler="x", client="a", feature="f2", block=0),
            Event(kind="log", handler="x", client="b", feature="g", block=1),
            Event(kind="exec", handler="x", client="a", feature="f1", block=0),
            Event(kind="exec", handler="x", client="b", feature="g", block=1),
            Event(kind="exec", handler="x", client="a", feature="f2", block=0),
        ]
        with pytest.raises(SemanticsError):
            check_handler_guarantee(bad_trace)

    def test_out_of_order_execution_detected(self):
        from repro.semantics.rules import Event

        bad_trace = [
            Event(kind="log", handler="x", client="a", feature="f1", block=0),
            Event(kind="log", handler="x", client="a", feature="f2", block=0),
            Event(kind="exec", handler="x", client="a", feature="f2", block=0),
            Event(kind="exec", handler="x", client="a", feature="f1", block=0),
        ]
        with pytest.raises(SemanticsError):
            check_handler_guarantee(bad_trace)


class TestFig5:
    def test_atomic_reservation_keeps_colours_consistent(self):
        """Every terminal state of Fig. 5 has x and y painted the same colour."""
        traces = collect_traces(fig5_multi_reservation())
        for trace in traces:
            colours = {}
            for event in trace:
                if event.kind == "exec":
                    colours.setdefault(event.handler, []).append(event.feature)
            assert colours["x"] == colours["y"]

    def test_nested_reservation_can_race(self):
        """The nested variant admits schedules where the colours differ."""
        traces = collect_traces(fig5_nested_reservation())
        mismatched = False
        for trace in traces:
            colours = {}
            for event in trace:
                if event.kind == "exec":
                    colours.setdefault(event.handler, []).append(event.feature)
            if colours.get("x") != colours.get("y"):
                mismatched = True
                break
        assert mismatched


class TestFig6Deadlock:
    def test_without_queries_no_deadlock(self):
        result = Explorer().explore(fig6_nested(with_queries=False))
        assert not result.has_deadlock

    def test_outer_queries_still_deadlock_free(self):
        result = Explorer().explore(fig6_nested(with_queries=True, query_inner=False))
        assert not result.has_deadlock

    def test_inner_queries_can_deadlock(self):
        result = Explorer().explore(fig6_with_queries())
        assert result.has_deadlock

    def test_random_run_reports_deadlock_or_finishes(self):
        explorer = Explorer()
        config = fig6_with_queries()
        outcomes = set()
        for seed in range(30):
            try:
                final, _ = explorer.random_run(config, seed=seed)
                outcomes.add("finished")
                assert final.terminal
            except DeadlockError:
                outcomes.add("deadlocked")
        assert "finished" in outcomes  # deadlock is possible, not certain

    def test_assert_deadlock_free_raises_on_fig6_queries(self):
        with pytest.raises(DeadlockError):
            Explorer().assert_deadlock_free(fig6_with_queries())


class TestGuaranteeProperty:
    @given(
        features_a=st.lists(st.sampled_from(["f", "g", "h"]), min_size=1, max_size=4),
        features_b=st.lists(st.sampled_from(["p", "q", "r"]), min_size=1, max_size=4),
        use_query=st.booleans(),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=40, deadline=None)
    def test_two_clients_never_interleave_within_blocks(self, features_a, features_b, use_query, seed):
        """Property: for arbitrary small two-client programs sharing one
        handler, (a) no interleaving deadlocks and (b) randomly sampled
        schedules always satisfy the reasoning guarantee."""
        body_a = [Call("x", f) for f in features_a]
        body_b = [Call("x", f) for f in features_b]
        if use_query:
            body_b.append(Query("x", "probe"))
        config = initial_configuration(
            {
                "a": Separate(("x",), seq(*body_a)),
                "b": Separate(("x",), seq(*body_b)),
            },
            extra_handlers=["x"],
        )
        explorer = Explorer()
        result = explorer.assert_deadlock_free(config)
        assert result.terminal_states
        for offset in range(3):
            _, events = explorer.random_run(config, seed=seed + offset)
            check_handler_guarantee(events)

    def test_paper_programs_registry(self):
        programs = paper_programs()
        assert set(programs) == {"fig1", "fig5", "fig5-nested", "fig6", "fig6-queries"}
