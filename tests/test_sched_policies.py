"""Tests for the pluggable scheduling-policy layer and schedule record/replay.

The contract under test, in order of appearance:

* FIFO reproduces the scheduler's historical behaviour bit-exactly (golden
  decision trace, and identity with a policy-less scheduler);
* seeded policies are deterministic (same seed = same schedule) and actually
  explore (different seeds diverge);
* a recorded trace replays to identical counters and virtual times, and a
  tampered or mismatched trace fails with ``ScheduleDivergenceError``;
* the selection plumbing (config, backend spec strings) resolves policies.
"""

from __future__ import annotations

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.backends import SimBackend, create_backend
from repro.config import QsConfig
from repro.errors import ScheduleDivergenceError
from repro.sched.policy import (
    Decision,
    FifoPolicy,
    PctPolicy,
    RandomPolicy,
    ReplayPolicy,
    ScheduleTrace,
    make_policy,
)
from repro.sched.scheduler import CooperativeScheduler
from repro.sched.tasks import Compute, as_generator


def three_compute_tasks(scheduler: CooperativeScheduler) -> None:
    for i in range(3):
        scheduler.spawn(as_generator([Compute(1.0), Compute(1.0)]), name=f"t{i}")


class Counter(SeparateObject):
    def __init__(self) -> None:
        self.value = 0

    @command
    def increment(self) -> None:
        self.value += 1

    @query
    def read(self) -> int:
        return self.value


def fingerprint(policy) -> tuple:
    """(virtual time, decision names, schedule-relevant counters) of one run."""
    backend = SimBackend(policy=policy, record_schedule=True)
    with QsRuntime("all", backend=backend) as rt:
        refs = [rt.new_handler(f"h{i}").create(Counter) for i in range(2)]

        def worker(k: int) -> None:
            for _ in range(3):
                with rt.separate(refs[k % 2]) as c:
                    c.increment()
                    c.read()

        for k in range(3):
            rt.spawn_client(worker, k, name=f"w{k}")
        rt.join_clients()
        virtual = rt.backend.now()
        counters = {k: v for k, v in rt.stats().as_dict().items() if v}
    trace = backend.schedule_recording()
    return virtual, tuple(d.chosen for d in trace.decisions), counters


class TestFifoGolden:
    def test_golden_decision_trace(self):
        """FIFO always dispatches the oldest ready task — frozen schedule."""
        sched = CooperativeScheduler(ncores=1, record_schedule=True)
        three_compute_tasks(sched)
        sched.run()
        trace = sched.recorded_schedule()
        # the only multi-candidate drains are at t=0 (one core serialises the
        # rest, waking exactly one task per completion afterwards); FIFO
        # always picks index 0
        assert [d.to_json() for d in trace.decisions] == [
            [0, ["t0", "t1", "t2"]],
            [0, ["t1", "t2"]],
        ]
        assert [d.chosen for d in trace.decisions] == ["t0", "t1"]

    def test_fifo_matches_policyless_scheduler(self):
        """The policy seam must not perturb the historical schedule."""
        default = fingerprint(None)
        fifo = fingerprint(FifoPolicy())
        assert default == fifo

    def test_single_candidate_steps_are_not_recorded(self):
        sched = CooperativeScheduler(ncores=1, record_schedule=True)
        sched.spawn(as_generator([Compute(1.0), Compute(1.0)]), name="only")
        sched.run()
        assert sched.recorded_schedule().decisions == []

    def test_recording_off_by_default(self):
        sched = CooperativeScheduler(ncores=1)
        three_compute_tasks(sched)
        sched.run()
        assert sched.recorded_schedule() is None


class TestSeededDeterminism:
    def test_same_seed_same_schedule(self):
        assert fingerprint(RandomPolicy(7)) == fingerprint(RandomPolicy(7))

    def test_different_seeds_diverge(self):
        baseline = fingerprint(RandomPolicy(0))
        assert any(fingerprint(RandomPolicy(seed)) != baseline for seed in range(1, 8)), \
            "eight random seeds should not all produce the identical schedule"

    def test_pct_same_seed_same_schedule(self):
        assert fingerprint(PctPolicy(3)) == fingerprint(PctPolicy(3))

    def test_sched_decisions_counter_bumped(self):
        _, decisions, counters = fingerprint(RandomPolicy(1))
        assert counters.get("sched_decisions", 0) == len(decisions)


class TestReplay:
    def _record(self, seed: int):
        backend = SimBackend(policy=RandomPolicy(seed), record_schedule=True)
        with QsRuntime("all", backend=backend) as rt:
            ref = rt.new_handler("h").create(Counter)

            def worker(k: int) -> None:
                for _ in range(2):
                    with rt.separate(ref) as c:
                        c.increment()
                        c.read()

            for k in range(3):
                rt.spawn_client(worker, k, name=f"w{k}")
            rt.join_clients()
            virtual = rt.backend.now()
            counters = {k: v for k, v in rt.stats().as_dict().items() if v}
        return backend.schedule_recording(), virtual, counters

    def _replay(self, trace: ScheduleTrace):
        backend = SimBackend(policy=ReplayPolicy(trace), record_schedule=True)
        with QsRuntime("all", backend=backend) as rt:
            ref = rt.new_handler("h").create(Counter)

            def worker(k: int) -> None:
                for _ in range(2):
                    with rt.separate(ref) as c:
                        c.increment()
                        c.read()

            for k in range(3):
                rt.spawn_client(worker, k, name=f"w{k}")
            rt.join_clients()
            virtual = rt.backend.now()
            counters = {k: v for k, v in rt.stats().as_dict().items() if v}
        return backend.schedule_recording(), virtual, counters

    def test_replay_reproduces_counters_and_virtual_time(self):
        trace, virtual, counters = self._record(seed=11)
        replayed_trace, replayed_virtual, replayed_counters = self._replay(trace)
        assert replayed_virtual == virtual
        assert replayed_counters == counters
        assert [d.to_json() for d in replayed_trace.decisions] == \
            [d.to_json() for d in trace.decisions]

    def test_trace_json_roundtrip(self, tmp_path):
        trace, _, _ = self._record(seed=5)
        trace.meta = {"workload": "unit", "note": "roundtrip"}
        path = tmp_path / "schedule.json"
        trace.save(str(path))
        loaded = ScheduleTrace.load(str(path))
        assert loaded.policy == trace.policy
        assert loaded.seed == trace.seed
        assert loaded.meta == trace.meta
        assert loaded.decisions == trace.decisions

    def test_tampered_trace_raises_divergence(self):
        trace, _, _ = self._record(seed=11)
        assert trace.decisions, "the workload must involve real decisions"
        first = trace.decisions[0]
        trace.decisions[0] = Decision(index=first.index,
                                      candidates=first.candidates + ("intruder",))
        with pytest.raises(ScheduleDivergenceError, match="diverged at decision 0"):
            self._replay(trace)

    def test_replay_disambiguates_duplicate_task_names(self):
        """Decisions are replayed by index, so equal names cannot alias."""

        def record_or_replay(policy):
            sched = CooperativeScheduler(ncores=1, policy=policy, record_schedule=True)
            order = []

            def worker(tag):
                order.append(tag)
                yield Compute(1.0)

            for tag in ("a", "b"):
                sched.spawn(worker(tag), name="twin")  # deliberately identical names
            sched.run()
            return order, sched.recorded_schedule()

        # seed 2 makes the random policy pick the *second* twin first
        seed = next(s for s in range(20)
                    if record_or_replay(RandomPolicy(s))[0] == ["b", "a"])
        order, trace = record_or_replay(RandomPolicy(seed))
        replayed_order, _ = record_or_replay(ReplayPolicy(trace))
        assert replayed_order == order == ["b", "a"]

    def test_truncated_trace_raises_divergence(self):
        trace, _, _ = self._record(seed=11)
        trace.decisions = trace.decisions[:1]
        with pytest.raises(ScheduleDivergenceError, match="exhausted"):
            self._replay(trace)

    def test_unsupported_trace_version_rejected(self):
        with pytest.raises(Exception, match="version"):
            ScheduleTrace.from_json({"version": 99, "decisions": []})


class TestSelectionPlumbing:
    def test_make_policy_names(self):
        assert isinstance(make_policy("fifo"), FifoPolicy)
        assert isinstance(make_policy("random", seed=3), RandomPolicy)
        assert isinstance(make_policy("pct", seed=3), PctPolicy)
        assert isinstance(make_policy(None), FifoPolicy)
        instance = RandomPolicy(9)
        assert make_policy(instance) is instance

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown scheduling policy"):
            make_policy("quantum")

    def test_config_carries_policy(self):
        config = QsConfig.all().with_(backend="sim", sched_policy="random", sched_seed=13)
        with QsRuntime(config) as rt:
            assert rt.backend.policy.name == "random"
            assert rt.backend.policy.seed == 13
        assert "sched=random@13" in config.describe()

    def test_backend_spec_string_selects_policy(self):
        backend = create_backend("sim:random:21")
        with QsRuntime("all", backend=backend) as rt:
            assert rt.backend.policy.name == "random"
            assert rt.backend.policy.seed == 21

    def test_env_var_spec_selects_policy(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sim:pct:4")
        with QsRuntime("all") as rt:
            assert rt.backend.name == "sim"
            assert rt.backend.policy.name == "pct"
            assert rt.backend.policy.seed == 4

    def test_policy_spec_on_threads_rejected(self):
        with pytest.raises(ValueError, match="only sim takes a policy"):
            create_backend("threads:random")

    def test_bad_seed_in_spec_rejected(self):
        with pytest.raises(ValueError, match="invalid scheduling seed"):
            create_backend("sim:random:many")

    def test_pct_parameter_validation(self):
        with pytest.raises(ValueError):
            PctPolicy(depth=0)
        with pytest.raises(ValueError):
            PctPolicy(steps=0)
