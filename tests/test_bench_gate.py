"""Unit tests for ``benchmarks/bench_gate.py`` over synthetic measurements.

The gate protects the repo's recorded performance claims, so the gate
itself needs coverage: a regression in *it* (a floor silently skipped, a
missing series passing, failures reported one at a time) would let the
real numbers rot.  These tests drive ``check``/``failures``/``main`` with
hand-built ``BENCH_backends.json``-shaped dicts — no benchmark runs.
"""

from __future__ import annotations

import importlib.util
import json
import pathlib
import sys

import pytest

_GATE_PATH = pathlib.Path(__file__).resolve().parent.parent / "benchmarks" / "bench_gate.py"
_spec = importlib.util.spec_from_file_location("bench_gate", _GATE_PATH)
bench_gate = importlib.util.module_from_spec(_spec)
_spec.loader.exec_module(bench_gate)


THRESHOLDS = {
    "floors": {
        "fan_in.speedup": {"full": 2.0, "smoke": 1.15},
        "wire.speedup": {"full": 1.5, "smoke": 0.5},
        "hybrid.speedup": {"full": 1.5, "smoke": 0.3, "min_cpu_count": 4},
        "full_only.speedup": {"full": 1.1},
    },
    "require_true": ["fan_in.parity", "hybrid.parity"],
}


def _bench(cpu_count: int = 8, **sections) -> dict:
    base = {
        "meta": {"cpu_count": cpu_count, "smoke": False},
        "fan_in": {"speedup": 3.0, "parity": True},
        "wire": {"speedup": 2.0},
        "hybrid": {"speedup": 2.5, "parity": True},
        "full_only": {"speedup": 1.4},
    }
    base.update(sections)
    return base


def _statuses(rows) -> dict:
    return {path: status for path, _value, _expect, status in rows}


class TestCheck:
    def test_all_floors_hold(self):
        rows, ok = bench_gate.check(_bench(), THRESHOLDS, "full")
        assert ok
        assert set(_statuses(rows).values()) == {"ok"}
        assert bench_gate.failures(rows) == []

    def test_failing_floor_is_reported(self):
        rows, ok = bench_gate.check(_bench(wire={"speedup": 1.2}), THRESHOLDS, "full")
        assert not ok
        assert _statuses(rows)["wire.speedup"] == "FAIL"

    def test_missing_series_is_a_failure_not_a_pass(self):
        bench = _bench()
        del bench["wire"]
        rows, ok = bench_gate.check(bench, THRESHOLDS, "full")
        assert not ok
        failed = {row[0]: row[1] for row in bench_gate.failures(rows)}
        assert failed == {"wire.speedup": "MISSING"}

    def test_non_numeric_value_fails_the_floor(self):
        rows, ok = bench_gate.check(_bench(wire={"speedup": "fast"}), THRESHOLDS, "full")
        assert not ok
        assert _statuses(rows)["wire.speedup"] == "FAIL"

    def test_all_failures_collected_in_one_pass(self):
        # the gate never stops at the first regression: every failing
        # floor, missing series and broken correctness claim comes back
        # from a single check() call
        bench = _bench(wire={"speedup": 0.9},
                       fan_in={"speedup": 1.0, "parity": False})
        del bench["full_only"]
        rows, ok = bench_gate.check(bench, THRESHOLDS, "full")
        assert not ok
        assert sorted(row[0] for row in bench_gate.failures(rows)) == [
            "fan_in.parity", "fan_in.speedup", "full_only.speedup", "wire.speedup"]

    def test_min_cpu_count_skips_below_the_core_floor(self):
        # one core cannot show a CPU-bound win: skipped, not failed ...
        rows, ok = bench_gate.check(_bench(cpu_count=1, hybrid={"speedup": 0.1, "parity": True}),
                                    THRESHOLDS, "full")
        assert ok
        assert _statuses(rows)["hybrid.speedup"] == "skip"
        # ... but with enough cores the same number is a real regression
        rows, ok = bench_gate.check(_bench(cpu_count=8, hybrid={"speedup": 0.1, "parity": True}),
                                    THRESHOLDS, "full")
        assert not ok
        assert _statuses(rows)["hybrid.speedup"] == "FAIL"

    def test_mode_without_a_floor_is_skipped(self):
        # full_only has no smoke column: smoke runs skip it entirely
        rows, ok = bench_gate.check(_bench(full_only={"speedup": 0.01}),
                                    THRESHOLDS, "smoke")
        assert ok
        assert _statuses(rows)["full_only.speedup"] == "skip"

    def test_smoke_mode_applies_the_looser_floors(self):
        bench = _bench(fan_in={"speedup": 1.3, "parity": True})
        _, full_ok = bench_gate.check(bench, THRESHOLDS, "full")
        _, smoke_ok = bench_gate.check(bench, THRESHOLDS, "smoke")
        assert not full_ok and smoke_ok

    def test_require_true_rejects_anything_but_true(self):
        for bad in (False, None, 1, "true"):
            bench = _bench(hybrid={"speedup": 2.5, "parity": bad})
            rows, ok = bench_gate.check(bench, THRESHOLDS, "full")
            assert not ok, f"parity={bad!r} must not pass"
            assert _statuses(rows)["hybrid.parity"] == "FAIL"

    def test_require_true_missing_path_fails(self):
        bench = _bench()
        del bench["hybrid"]["parity"]
        rows, ok = bench_gate.check(bench, THRESHOLDS, "full")
        assert not ok
        assert ("hybrid.parity", "MISSING", "== true", "FAIL") in rows


class TestRepoThresholds:
    """The committed thresholds file gates the committed measurement."""

    def test_committed_bench_passes_the_committed_floors(self):
        repo = pathlib.Path(__file__).resolve().parent.parent
        bench = json.loads((repo / "BENCH_backends.json").read_text(encoding="utf-8"))
        thresholds = json.loads(
            (repo / "benchmarks" / "thresholds.json").read_text(encoding="utf-8"))
        mode = "smoke" if bench["meta"].get("smoke") else "full"
        rows, ok = bench_gate.check(bench, thresholds, mode)
        assert ok, f"committed bench fails its own gate: {bench_gate.failures(rows)}"

    def test_hybrid_floor_is_wired_in(self):
        repo = pathlib.Path(__file__).resolve().parent.parent
        thresholds = json.loads(
            (repo / "benchmarks" / "thresholds.json").read_text(encoding="utf-8"))
        floor = thresholds["floors"]["hybrid_fan_in_compute.speedup"]
        assert floor["full"] >= 1.5
        assert floor["min_cpu_count"] >= 4
        assert "hybrid_fan_in_compute.parity" in thresholds["require_true"]


class TestMain:
    def test_exit_status_and_collected_failure_report(self, tmp_path, capsys):
        bench = _bench(wire={"speedup": 0.9},
                       fan_in={"speedup": 1.0, "parity": False})
        bench_file = tmp_path / "bench.json"
        bench_file.write_text(json.dumps(bench), encoding="utf-8")
        thresholds_file = tmp_path / "thresholds.json"
        thresholds_file.write_text(json.dumps(THRESHOLDS), encoding="utf-8")

        code = bench_gate.main([str(bench_file), "--thresholds", str(thresholds_file)])
        captured = capsys.readouterr()
        assert code == 1
        assert "3 gate(s) failed in one pass" in captured.err
        for path in ("fan_in.speedup", "fan_in.parity", "wire.speedup"):
            assert path in captured.err

        bench_file.write_text(json.dumps(_bench()), encoding="utf-8")
        code = bench_gate.main([str(bench_file), "--thresholds", str(thresholds_file)])
        assert code == 0
        assert "all floors hold" in capsys.readouterr().out
