"""The ``repro.serve`` gateway: units, integration and error paths."""

import asyncio
import json
import socket
import time
from contextlib import contextmanager

import pytest

from repro import QsRuntime, ScoopError
from repro.serve import (
    AdmissionController,
    BadRequest,
    Gateway,
    ReadCache,
    Router,
    MISS,
    serve_cases,
)
from repro.serve.http import format_request, format_response, read_request, read_response
from repro.serve.loadgen import _request
from repro.util.counters import Counters

#: every real-time backend the gateway must serve on (sim is rejected)
GATEWAY_BACKENDS = ("threads", "process", "async", "process+async")


def http(addr, method, target, payload=None):
    """One request over a fresh connection (blocking helper for tests)."""
    return asyncio.run(_request(addr[0], addr[1], method, target, payload))


def http_concurrent(addr, calls):
    """Fire many requests concurrently; returns [(status, body), ...]."""
    async def go():
        return await asyncio.gather(
            *[_request(addr[0], addr[1], method, target, payload)
              for method, target, payload in calls])
    return asyncio.run(go())


@contextmanager
def gateway_on(backend, **kwargs):
    kwargs.setdefault("shards", 2)
    with QsRuntime(backend=backend) as rt:
        gateway = serve_cases(rt, **kwargs)
        try:
            yield rt, gateway
        finally:
            gateway.stop()


# ---------------------------------------------------------------------------
# units: router
# ---------------------------------------------------------------------------
class TestRouter:
    def test_resolve_binds_placeholders(self):
        router = Router()
        router.add("GET", "/cases/{case_id}/allegations", lambda: None,
                   entity="case_id", cache=True)
        match = router.resolve("GET", "/cases/abc-7/allegations")
        assert match.params == {"case_id": "abc-7"}
        assert match.entity_key == "abc-7"
        assert match.route.cache is True

    def test_resolve_distinguishes_404_from_405(self):
        router = Router()
        router.add("GET", "/cases/{case_id}", lambda: None, entity="case_id")
        assert router.resolve("PUT", "/cases/1") == 405
        assert router.resolve("GET", "/nope") is None

    def test_placeholders_do_not_cross_segments(self):
        router = Router()
        router.add("GET", "/cases/{case_id}", lambda: None)
        assert router.resolve("GET", "/cases/1/allegations") is None

    def test_cacheable_non_get_rejected(self):
        with pytest.raises(ValueError, match="only GET routes"):
            Router().add("POST", "/x/{id}", lambda: None, cache=True)

    def test_entity_must_be_a_placeholder(self):
        with pytest.raises(ValueError, match="no such placeholder"):
            Router().add("GET", "/cases/{case_id}", lambda: None, entity="user_id")

    def test_describe_lists_the_table(self):
        from repro.serve.app import case_router

        table = case_router().describe()
        assert {"method": "GET", "template": "/cases/{case_id}", "entity": "case_id",
                "cache": True, "handler": "get_case"} in table


# ---------------------------------------------------------------------------
# units: cache
# ---------------------------------------------------------------------------
class TestReadCache:
    def test_miss_store_hit_and_counters(self):
        counters = Counters()
        cache = ReadCache(counters)
        assert cache.lookup("e", "/r") is MISS
        epoch = cache.begin_read("e")
        assert cache.store("e", "/r", epoch, "value") is True
        assert cache.lookup("e", "/r") == "value"
        assert counters.get("cache_hits") == 1
        assert counters.get("cache_misses") == 1

    def test_invalidate_drops_every_resource_of_the_entity(self):
        cache = ReadCache()
        epoch = cache.begin_read("e")
        cache.store("e", "/a", epoch, 1)
        cache.store("e", "/b", epoch, 2)
        other = cache.begin_read("other")
        cache.store("other", "/a", other, 3)
        cache.invalidate("e")
        assert cache.lookup("e", "/a") is MISS
        assert cache.lookup("e", "/b") is MISS
        assert cache.lookup("other", "/a") == 3
        assert cache.counters.get("cache_invalidations") == 1

    def test_stale_repopulation_race_is_blocked_by_the_epoch_guard(self):
        # the race: a read snapshots the value, a write invalidates, then the
        # read tries to cache its (now stale) value — the store must refuse
        cache = ReadCache()
        epoch = cache.begin_read("e")
        cache.invalidate("e")        # concurrent write wins the race
        assert cache.store("e", "/r", epoch, "stale") is False
        assert cache.lookup("e", "/r") is MISS

    def test_overflow_evicts_instead_of_growing(self):
        cache = ReadCache(max_entries=2)
        for i in range(5):
            cache.store(f"e{i}", "/r", cache.begin_read(f"e{i}"), i)
        assert len(cache._entries) <= 2


# ---------------------------------------------------------------------------
# units: depth probe + admission
# ---------------------------------------------------------------------------
class TestDepthProbeAndAdmission:
    def test_probe_tracks_in_flight_per_shard(self):
        with QsRuntime() as rt:
            from repro.serve.app import create_case_group

            group = create_case_group(rt, shards=2)
            probe = group.depth_probe()
            assert probe.depth("k") == 0
            token = probe.enter("k")
            assert probe.in_flight("k") == 1
            assert probe.depth("k") >= 1
            same_shard_token = probe.enter("k")
            assert probe.in_flight("k") == 2
            probe.exit(token)
            probe.exit(same_shard_token)
            assert probe.depth("k") == 0
            assert probe.snapshot() == ()

    def test_admission_sheds_at_the_watermark(self):
        class FakeProbe:
            def __init__(self):
                self.level = 0

            def depth(self, key):
                return self.level

            def enter(self, key):
                self.level += 1
                return "shard"

            def exit(self, token):
                self.level -= 1

        counters = Counters()
        controller = AdmissionController(FakeProbe(), watermark=2, counters=counters)
        first = controller.admit("k")
        second = controller.admit("k")
        assert first is not None and second is not None
        assert controller.admit("k") is None          # at the watermark: shed
        assert counters.get("serve_shed") == 1
        controller.release(first)
        assert controller.admit("k") is not None      # slot freed
        controller.release(None)                      # no-op, no crash

    def test_watermark_must_be_positive(self):
        with pytest.raises(ValueError, match=">= 1"):
            AdmissionController(object(), watermark=0)


# ---------------------------------------------------------------------------
# units: http framing
# ---------------------------------------------------------------------------
def _parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)
    return asyncio.run(go())


class TestHttpFraming:
    def test_round_trip_request(self):
        request = _parse(format_request("POST", "/cases/1/allegations?x=1",
                                        b'{"a":2}'))
        assert request.method == "POST"
        assert request.path == "/cases/1/allegations"
        assert request.query == {"x": "1"}
        assert request.json() == {"a": 2}
        assert request.keep_alive is True

    @pytest.mark.parametrize("raw", [
        b"garbage\r\n\r\n",
        b"GET /x\r\n\r\n",                                  # no version
        b"BREW /pot HTTP/1.1\r\n\r\n",                      # unknown method
        b"GET /x HTTP/2.0\r\n\r\n",                         # bad version
        b"GET relative HTTP/1.1\r\n\r\n",                   # not absolute-path
        b"GET /x HTTP/1.1\r\nno-colon-here\r\n\r\n",        # bad header
        b"GET /x HTTP/1.1\r\nContent-Length: nope\r\n\r\n",
        b"GET /x HTTP/1.1\r\nContent-Length: -5\r\n\r\n",
        b"POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",   # truncated body
        b"GET /x HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
    ])
    def test_malformed_requests_raise_bad_request(self, raw):
        with pytest.raises(BadRequest):
            _parse(raw)

    def test_clean_close_between_requests_is_eof(self):
        with pytest.raises(EOFError):
            _parse(b"")

    def test_connection_close_header_disables_keep_alive(self):
        request = _parse(b"GET /x HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert request.keep_alive is False

    def test_response_round_trip(self):
        async def go():
            reader = asyncio.StreamReader()
            reader.feed_data(format_response(200, b'{"ok":true}'))
            reader.feed_eof()
            return await read_response(reader)
        status, headers, body = asyncio.run(go())
        assert status == 200
        assert headers["content-length"] == "11"
        assert json.loads(body) == {"ok": True}


# ---------------------------------------------------------------------------
# integration: the gateway on every real-time backend
# ---------------------------------------------------------------------------
@pytest.mark.parametrize("backend", GATEWAY_BACKENDS)
class TestGatewayOnEveryBackend:
    def test_crud_and_write_then_read_fresh(self, backend):
        with gateway_on(backend) as (rt, gateway):
            addr = gateway.address
            expected_mode = ("async-native" if backend in ("async", "process+async")
                             else "executor")
            assert gateway.mode == expected_mode

            status, body = http(addr, "GET", "/cases/nope")
            assert status == 404

            status, body = http(addr, "PUT", "/cases/c1", {"title": "first"})
            assert (status, body["version"]) == (200, 1)

            status, body = http(addr, "GET", "/cases/c1")
            assert status == 200 and body["data"] == {"title": "first"}

            hits_before = rt.counters.get("cache_hits")
            status, body = http(addr, "GET", "/cases/c1")
            assert status == 200
            assert rt.counters.get("cache_hits") == hits_before + 1

            # write-through invalidation: the very next read is fresh
            status, body = http(addr, "PUT", "/cases/c1", {"title": "second"})
            assert (status, body["version"]) == (200, 2)
            status, body = http(addr, "GET", "/cases/c1")
            assert status == 200 and body["data"] == {"title": "second"}

            status, body = http(addr, "POST", "/cases/c1/allegations",
                                {"token": "t1", "text": "x"})
            assert (status, body["index"]) == (201, 0)
            status, body = http(addr, "GET", "/cases/c1/allegations")
            assert status == 200
            assert [a["token"] for a in body["allegations"]] == ["t1"]

            status, _ = http(addr, "DELETE", "/cases/c1")
            assert status == 405
            status, _ = http(addr, "GET", "/not/a/route")
            assert status == 404
            status, body = http(addr, "GET", "/healthz")
            assert status == 200 and body["backend"] == rt.backend.name
            status, body = http(addr, "GET", "/metrics")
            assert status == 200 and body["serve_requests"] > 0
            status, body = http(addr, "GET", "/routes")
            assert status == 200 and len(body) == 7

    def test_interleaved_writers_lose_nothing(self, backend):
        with gateway_on(backend) as (rt, gateway):
            addr = gateway.address
            http(addr, "PUT", "/cases/c1", {})
            calls = [("POST", "/cases/c1/allegations", {"token": f"t{i}"})
                     for i in range(16)]
            results = http_concurrent(addr, calls)
            acked = sum(1 for status, _ in results if status == 201)
            _, body = http(addr, "GET", "/cases/c1/allegations")
            tokens = [a["token"] for a in body["allegations"]]
            assert len(tokens) == acked == 16
            assert len(set(tokens)) == 16


# ---------------------------------------------------------------------------
# integration: error paths (single backend where the path is backend-neutral)
# ---------------------------------------------------------------------------
class TestGatewayErrorPaths:
    def test_sim_backend_rejected(self):
        with QsRuntime(backend="sim") as rt:
            from repro.serve.app import create_case_group

            group = create_case_group(rt, shards=1)
            with pytest.raises(ScoopError, match="virtual time"):
                Gateway(rt, group)

    def test_malformed_http_gets_a_400_and_close(self):
        with gateway_on("threads") as (rt, gateway):
            with socket.create_connection(gateway.address, timeout=5) as sock:
                sock.sendall(b"this is not http\r\n\r\n")
                raw = b""
                while b"\r\n\r\n" not in raw:
                    chunk = sock.recv(4096)
                    if not chunk:
                        break
                    raw += chunk
                assert raw.startswith(b"HTTP/1.1 400 ")
            # the gateway survives and keeps serving
            status, _ = http(gateway.address, "GET", "/healthz")
            assert status == 200

    def test_bad_json_body_is_a_400_not_a_500(self):
        with gateway_on("threads") as (rt, gateway):
            with socket.create_connection(gateway.address, timeout=5) as sock:
                sock.sendall(b"PUT /cases/c1 HTTP/1.1\r\nHost: x\r\n"
                             b"Content-Length: 9\r\n\r\nnot json!")
                raw = sock.recv(4096)
                assert raw.startswith(b"HTTP/1.1 400 ")

    @pytest.mark.parametrize("backend", ["threads", "process+async"])
    def test_disconnect_mid_response_does_not_wedge_the_drain(self, backend):
        with gateway_on(backend) as (rt, gateway):
            addr = gateway.address
            http(addr, "PUT", "/cases/c1", {"title": "x"})
            # a client that sends a request and vanishes without reading
            for _ in range(5):
                sock = socket.create_connection(addr, timeout=5)
                sock.sendall(b"GET /cases/c1 HTTP/1.1\r\nHost: x\r\n\r\n")
                sock.close()
            # one that dies mid-request (promised body never arrives)
            sock = socket.create_connection(addr, timeout=5)
            sock.sendall(b"POST /cases/c1/allegations HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 100\r\n\r\n{\"tok")
            sock.close()
            # the shard keeps serving everyone else, nothing is wedged
            deadline = time.monotonic() + 5
            while True:
                try:
                    status, body = http(addr, "GET", "/cases/c1")
                    assert status == 200 and body["data"] == {"title": "x"}
                    break
                except (ConnectionError, OSError):
                    if time.monotonic() > deadline:
                        raise
            status, body = http(addr, "POST", "/cases/c1/allegations", {"token": "after"})
            assert status == 201

    @pytest.mark.parametrize("backend", ["threads", "process+async"])
    def test_saturated_shard_sheds_503_and_loses_no_acked_write(self, backend):
        with gateway_on(backend, watermark=1) as (rt, gateway):
            addr = gateway.address
            http(addr, "PUT", "/cases/hot", {})
            calls = [("POST", "/cases/hot/allegations", {"token": f"t{i}"})
                     for i in range(40)]
            results = http_concurrent(addr, calls)
            statuses = [status for status, _ in results]
            assert 503 in statuses, "watermark 1 under 40 concurrent writes must shed"
            acked = {body["index"] for status, body in results if status == 201}
            assert acked, "at least one write must get through"
            assert rt.counters.get("serve_shed") > 0
            shed = next(body for status, body in results if status == 503)
            assert shed["entity"] == "hot"
            # lossless under shedding: exactly the acked writes are present
            _, body = http(addr, "GET", "/cases/hot/allegations")
            assert len(body["allegations"]) == len(acked)

    def test_cache_hits_are_served_even_past_the_watermark(self):
        with gateway_on("threads", watermark=1) as (rt, gateway):
            addr = gateway.address
            http(addr, "PUT", "/cases/c1", {"title": "x"})
            http(addr, "GET", "/cases/c1")            # populate
            # hold the only admission slot for c1's shard
            ticket = gateway.admission.admit("c1")
            assert ticket is not None
            try:
                status, _ = http(addr, "GET", "/cases/c1")
                assert status == 200                  # cache hit, no admission
                status, _ = http(addr, "POST", "/cases/c1/allegations", {"token": "t"})
                assert status == 503                  # writes cannot bypass
            finally:
                gateway.admission.release(ticket)

    def test_keep_alive_serves_multiple_requests_per_connection(self):
        with gateway_on("threads") as (rt, gateway):
            http(gateway.address, "PUT", "/cases/c1", {"title": "x"})

            async def two_on_one_connection():
                reader, writer = await asyncio.open_connection(*gateway.address)
                try:
                    writer.write(format_request("GET", "/cases/c1"))
                    await writer.drain()
                    first = await read_response(reader)
                    writer.write(format_request("GET", "/cases/c1", keep_alive=False))
                    await writer.drain()
                    second = await read_response(reader)
                    return first, second
                finally:
                    writer.close()

            first, second = asyncio.run(two_on_one_connection())
            assert first[0] == 200 and second[0] == 200
            assert first[1]["connection"] == "keep-alive"
            assert second[1]["connection"] == "close"

    def test_handler_exception_is_a_500_not_a_hang(self):
        from repro.serve.app import create_case_group

        router = Router()

        async def boom(ctx, request):
            raise RuntimeError("kaboom")

        router.add("GET", "/boom", boom)
        with QsRuntime(backend="threads") as rt:
            group = create_case_group(rt, shards=1)
            gateway = Gateway(rt, group, router=router).start()
            try:
                status, body = http(gateway.address, "GET", "/boom")
                assert status == 500
                assert "kaboom" in body["error"]
            finally:
                gateway.stop()
