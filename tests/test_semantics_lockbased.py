"""Tests for the original lock-based SCOOP semantics and its Qs comparison."""

import pytest

from repro.errors import SemanticsError
from repro.semantics.lockbased import (
    LockExplorer,
    LockState,
    blocked_clients,
    compare_with_qs,
    enabled_lock_transitions,
)
from repro.semantics.syntax import Call, Query, Separate, seq


def fig6_programs(with_queries: bool = False):
    """The Fig. 6 clients: nested reservations in opposite orders."""
    def client(outer, inner):
        body = seq(Call("x", "foo"), Call("y", "bar"))
        if with_queries:
            body = seq(body, Query(inner, "value"))
        return Separate((outer,), Separate((inner,), body))

    return {"c1": client("x", "y"), "c2": client("y", "x")}


def fig5_programs():
    """The Fig. 5 clients: atomic multi-reservation of both handlers."""
    return {
        "t1": Separate(("x", "y"), seq(Call("x", "set_red"), Call("y", "set_red"))),
        "t2": Separate(("x", "y"), seq(Call("x", "set_blue"), Call("y", "set_blue"))),
    }


class TestLockStateAndSteps:
    def test_initial_state_discovers_handlers_from_programs(self):
        state = LockState.initial(fig6_programs())
        assert state.owner_of("x") == "" and state.owner_of("y") == ""
        assert not state.terminal

    def test_separate_acquires_all_locks_atomically(self):
        state = LockState.initial(fig5_programs())
        transitions = enabled_lock_transitions(state)
        assert {t.rule for t in transitions} == {"lock"}
        after = transitions[0].state
        holder = transitions[0].client
        assert after.owner_of("x") == holder and after.owner_of("y") == holder
        assert after.held_by(holder) == {"x", "y"}

    def test_separate_blocked_while_lock_is_held(self):
        state = LockState.initial(fig5_programs())
        after_first = enabled_lock_transitions(state)[0].state
        blocked_client = [c for c, _ in state.programs if c != enabled_lock_transitions(state)[0].client][0]
        # the other client cannot take its lock step
        assert all(t.client != blocked_client or t.rule != "lock"
                   for t in enabled_lock_transitions(after_first))

    def test_release_frees_the_lock_for_the_next_client(self):
        state = LockState.initial({"c1": Separate(("x",), Call("x", "f")),
                                   "c2": Separate(("x",), Call("x", "g"))})
        result = LockExplorer().explore(state)
        assert not result.has_deadlock
        assert result.terminal_states
        for terminal in result.terminal_states:
            assert terminal.owner_of("x") == ""

    def test_call_without_lock_is_a_model_error(self):
        state = LockState.initial({"c": Call("x", "f")})
        with pytest.raises(SemanticsError):
            enabled_lock_transitions(state)

    def test_blocked_clients_reports_who_waits_on_whom(self):
        state = LockState.initial(fig6_programs())
        # let c1 take x and c2 take y
        step1 = [t for t in enabled_lock_transitions(state) if t.client == "c1"][0].state
        step2 = [t for t in enabled_lock_transitions(step1) if t.client == "c2" and t.rule == "lock"][0].state
        # now both try to take the inner lock and block
        step3 = step2
        for _ in range(2):
            lock_steps = [t for t in enabled_lock_transitions(step3) if t.rule == "lock"]
            if not lock_steps:
                break
            step3 = lock_steps[0].state
        blocked = blocked_clients(step2)
        # in the state after both outer locks are taken, each inner separate is blocked
        assert blocked == {"c1": ("y", "c2"), "c2": ("x", "c1")} or blocked == {}


class TestFig6Comparison:
    def test_lock_based_fig6_can_deadlock_without_any_query(self):
        """Section 2.5: 'Under the original handler implementation of SCOOP,
        the program in Fig. 6 will deadlock under some schedules'."""
        result = LockExplorer().explore(LockState.initial(fig6_programs(with_queries=False)))
        assert result.has_deadlock
        assert result.terminal_states  # other schedules complete fine

    def test_deadlocked_state_is_a_circular_wait(self):
        result = LockExplorer().explore(LockState.initial(fig6_programs()))
        state = result.deadlock_states[0]
        waits = blocked_clients(state)
        assert waits["c1"] == ("y", "c2")
        assert waits["c2"] == ("x", "c1")

    def test_qs_semantics_removes_the_deadlock(self):
        outcome = compare_with_qs(fig6_programs(with_queries=False))
        assert outcome == {"lock_based": True, "qs": False}

    def test_consistent_lock_order_is_safe_under_both(self):
        programs = {
            "c1": Separate(("x",), Separate(("y",), Call("y", "f"))),
            "c2": Separate(("x",), Separate(("y",), Call("y", "g"))),
        }
        outcome = compare_with_qs(programs)
        assert outcome == {"lock_based": False, "qs": False}

    def test_atomic_multi_reservation_is_safe_under_both(self):
        outcome = compare_with_qs(fig5_programs())
        assert outcome == {"lock_based": False, "qs": False}

    def test_queries_make_qs_deadlock_too(self):
        outcome = compare_with_qs(fig6_programs(with_queries=True))
        assert outcome == {"lock_based": True, "qs": True}
