"""Tests for the text figure renderers."""


from repro.experiments import figures


class TestBarChart:
    def test_bars_scale_with_values(self):
        chart = figures.bar_chart({"fast": 1.0, "slow": 10.0}, width=20)
        fast_line, slow_line = chart.splitlines()
        assert slow_line.count("#") == 20
        assert 1 <= fast_line.count("#") <= 3

    def test_log_scale_keeps_small_bars_visible(self):
        chart = figures.bar_chart({"opt": 1.0, "unopt": 1000.0}, width=30, log_scale=True)
        opt_line = chart.splitlines()[0]
        # on a linear scale this bar would be invisible; log scale keeps ~1/4
        assert opt_line.count("#") >= 5

    def test_zero_and_empty_inputs(self):
        assert "(no data)" in figures.bar_chart({}, title="t")
        chart = figures.bar_chart({"a": 0.0, "b": 2.0})
        assert chart.splitlines()[0].count("#") == 0

    def test_title_and_values_present(self):
        chart = figures.bar_chart({"x": 3.5}, title="My title")
        assert chart.startswith("My title")
        assert "3.50" in chart

    def test_grouped_chart_has_one_block_per_group(self):
        rows = [
            {"task": "randmat", "level": "none", "v": 10.0},
            {"task": "randmat", "level": "all", "v": 1.0},
            {"task": "thresh", "level": "none", "v": 6.0},
            {"task": "thresh", "level": "all", "v": 2.0},
        ]
        chart = figures.grouped_bar_chart(rows, group="task", label="level", value="v")
        assert chart.count("-- task:") == 2
        assert "randmat" in chart and "thresh" in chart


class TestStackedAndSpeedup:
    def test_stacked_chart_uses_distinct_fills_and_totals(self):
        rows = [
            {"lang": "qs", "compute_s": 1.0, "comm_s": 3.0},
            {"lang": "cxx", "compute_s": 0.5, "comm_s": 0.1},
        ]
        chart = figures.stacked_bar_chart(rows, label="lang", parts=("compute_s", "comm_s"))
        assert "#" in chart and "=" in chart
        assert "4.00" in chart          # qs total
        assert "legend" in chart

    def test_speedup_chart_plots_every_series(self):
        chart = figures.speedup_chart(
            {"qs": [(1, 1.0), (32, 10.0)], "erlang": [(1, 1.0), (32, 2.0)]},
            ideal=[1, 32],
        )
        assert "q" in chart and "e" in chart and "." in chart
        assert "legend" in chart

    def test_speedup_chart_empty(self):
        assert "(no data)" in figures.speedup_chart({})


class TestFigureAdapters:
    def test_fig16_adapter_consumes_table1_rows(self):
        rows = [
            {"task": "randmat", "level": "none", "comm_ops": 500},
            {"task": "randmat", "level": "all", "comm_ops": 4},
        ]
        chart = figures.fig16(rows)
        assert "Fig. 16" in chart and "randmat" in chart and "none" in chart

    def test_fig18_adapter_splits_compute_and_comm(self):
        rows = [
            {"task": "chain", "lang": "qs", "total_s": 0.7, "compute_s": 0.25, "comm_s": 0.45},
            {"task": "chain", "lang": "cxx", "total_s": 0.3, "compute_s": 0.3, "comm_s": 0.0},
        ]
        chart = figures.fig18(rows)
        assert "Fig. 18" in chart and "chain" in chart and "legend" in chart

    def test_fig19_adapter_builds_series_from_thread_columns(self):
        rows = [
            {"task": "chain", "series": "qs", "1": 1.0, "2": 1.9, "4": 3.5},
            {"task": "chain", "series": "go", "1": 1.0, "2": 1.8, "4": 3.0},
        ]
        chart = figures.fig19(rows, thread_counts=(1, 2, 4))
        assert "Fig. 19" in chart and "qs" in chart and "go" in chart

    def test_fig20_adapter(self):
        rows = [
            {"task": "mutex", "lang": "qs", "time_s": 0.47},
            {"task": "mutex", "lang": "haskell", "time_s": 0.86},
        ]
        chart = figures.fig20(rows)
        assert "Fig. 20" in chart and "mutex" in chart and "haskell" in chart
