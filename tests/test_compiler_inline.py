"""Tests for call-site inlining and its interaction with sync coalescing."""


from repro.compiler.attributes import AttributeInference, Effect
from repro.compiler.builder import FunctionBuilder
from repro.compiler.inline import InlinePass, inline_program
from repro.compiler.ir import CallInstr, LocalInstr
from repro.compiler.program import Program
from repro.compiler.sync_elision import SyncElisionPass
from repro.compiler.verify import verify_function


def single_block_helper(name="helper", sync_handler=None):
    b = FunctionBuilder(name, entry="entry")
    block = b.block("entry")
    if sync_handler:
        block.sync(sync_handler)
    block.local(f"body of {name}").ret()
    return b.build()


def multi_block_helper(name="looping_helper"):
    b = FunctionBuilder(name, entry="head")
    b.block("head").local().jump("tail")
    b.block("tail").local().ret()
    return b.build()


def caller_calling(callee, name="caller"):
    b = FunctionBuilder(name, entry="entry")
    b.block("entry").local("before").call(callee).local("after").ret()
    return b.build()


class TestInlining:
    def test_single_block_callee_is_spliced_in(self):
        program = Program.from_functions([caller_calling("helper"), single_block_helper()])
        report = inline_program(program)
        assert report.inlined_sites == 1
        assert report.per_callee == {"helper": 1}
        caller = program.function("caller")
        assert caller.count_instructions(CallInstr) == 0
        notes = [i.note for i in caller.block("entry").instructions if isinstance(i, LocalInstr)]
        assert notes == ["before", "body of helper", "after"]
        assert verify_function(caller) == []

    def test_multi_block_callee_is_skipped_with_a_reason(self):
        program = Program.from_functions([caller_calling("looping_helper"), multi_block_helper()])
        report = inline_program(program)
        assert report.inlined_sites == 0
        assert report.skipped[("caller", "entry", "looping_helper")] == "callee has more than one basic block"
        assert program.function("caller").count_instructions(CallInstr) == 1

    def test_external_callee_is_skipped(self):
        program = Program.from_functions([caller_calling("memcpy")])
        report = inline_program(program)
        assert report.inlined_sites == 0
        assert "not defined" in report.skipped[("caller", "entry", "memcpy")]

    def test_recursive_call_is_never_inlined(self):
        b = FunctionBuilder("rec", entry="entry")
        b.block("entry").local().call("rec").ret()
        program = Program.from_functions([b.build()])
        report = inline_program(program)
        assert report.inlined_sites == 0
        assert report.skipped[("rec", "entry", "rec")] == "recursive call"

    def test_call_chains_are_flattened_over_iterations(self):
        # a -> b -> c, every callee single-block
        a = caller_calling("b", name="a")
        b_fn = caller_calling("c", name="b")
        c = single_block_helper("c")
        program = Program.from_functions([a, b_fn, c])
        report = inline_program(program)
        assert report.per_callee["c"] >= 1 and report.per_callee["b"] == 1
        assert program.function("a").count_instructions(CallInstr) == 0
        assert report.iterations >= 2

    def test_inlined_body_is_a_copy_not_shared(self):
        program = Program.from_functions([caller_calling("helper"), single_block_helper()])
        inline_program(program)
        caller_instr = [i for i in program.function("caller").block("entry").instructions
                        if isinstance(i, LocalInstr) and i.note == "body of helper"][0]
        helper_instr = program.function("helper").block("entry").instructions[-1]
        assert caller_instr is not helper_instr

    def test_single_function_entry_point_without_program_is_a_no_op(self):
        fn = caller_calling("helper")
        out, report = InlinePass().run(fn)
        assert out.count_instructions(CallInstr) == 1
        assert report.inlined_sites == 0


class TestInliningUnlocksOptimizations:
    def test_inlining_exposes_the_callees_syncs_to_coalescing(self):
        """A readonly helper that itself syncs ``h`` hides that fact behind the
        call; inlining reveals it and the caller's second sync disappears."""
        caller = FunctionBuilder("client", entry="entry")
        caller.block("entry").call("read_helper", readonly=True).sync("h").local(
            "use h", handler="h").ret()
        program = Program.from_functions(
            [caller.build(), single_block_helper("read_helper", sync_handler="h")]
        )

        # without inlining: the readonly call preserves the (empty) sync-set,
        # so the caller's own sync must stay
        _, before = SyncElisionPass().run(program.function("client"))
        assert before.removed_syncs == 0

        inline_program(program)
        _, after = SyncElisionPass().run(program.function("client"))
        assert after.removed_syncs == 1

    def test_inlining_then_attribute_inference_still_agrees(self):
        """Inlining must not change what the effect inference concludes."""
        program = Program.from_functions(
            [caller_calling("helper"), single_block_helper("helper")]
        )
        before = AttributeInference().run(program).effects["caller"]
        inline_program(program)
        after = AttributeInference().run(program).effects["caller"]
        assert before is Effect.READNONE and after is Effect.READNONE
