"""Sharded handler groups: routing, scatter-gather, all-backend parity.

The contract under test (see ``docs/sharding.md``): every per-shard QoQ
guarantee survives sharding because each shard is an ordinary handler —
identical results *and counters* on ``threads``/``sim``/``process``/
``async``/``process+async`` for the same seeded workload, merge-identical
scatter-gather on every backend, process-stable key routing, and
deterministic placement of replicas across the process backend's worker
pool.
"""

from __future__ import annotations

import random

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.backends import ProcessBackend
from repro.config import LEVEL_ORDER
from repro.errors import ScoopError
from repro.shard import HashRing, ShardedGroup, stable_key_bytes

SHARD_BACKENDS = ("threads", "sim", "process", "async", "process+async:2:2")

#: counters whose values are schedule-independent for the workloads below
PARITY_COUNTERS = (
    "async_calls",
    "queries",
    "sync_roundtrips",
    "syncs_elided",
    "reservations",
    "multi_reservations",
    "qoq_enqueues",
    "calls_executed",
    "shard_routes",
    "shard_broadcasts",
    "shard_gathers",
    "reshard_moves",
    "ring_epoch",
    "shard_failovers",
)


class Cell(SeparateObject):
    """Per-shard replica of the sharded counter used throughout this module."""

    def __init__(self, value: int = 0) -> None:
        self.value = value

    @command
    def add(self, amount: int) -> None:
        self.value += amount

    @query
    def read(self) -> int:
        return self.value


class Ledger(SeparateObject):
    """Per-key append logs — migratable state for the rebalance tests."""

    def __init__(self) -> None:
        self.logs = {}

    @command
    def record(self, key, value) -> None:
        self.logs.setdefault(key, []).append(value)

    @query
    def dump(self) -> dict:
        return {key: list(log) for key, log in self.logs.items()}

    def reshard_export(self, keys):
        return {key: self.logs.pop(key) for key in keys if key in self.logs}

    def reshard_import(self, state) -> None:
        for key, log in state.items():
            self.logs.setdefault(key, []).extend(log)


class ShardAccount(SeparateObject):
    def __init__(self, balance: int) -> None:
        self.balance = balance

    @command
    def credit(self, amount: int) -> None:
        self.balance += amount

    @command
    def debit(self, amount: int) -> None:
        self.balance -= amount

    @query
    def read(self) -> int:
        return self.balance


# ----------------------------------------------------------------------------
# the shared parity workload
# ----------------------------------------------------------------------------
def sharded_workload(backend: str) -> dict:
    """Routed transfers + broadcast + gathers; deterministic on any backend."""
    with QsRuntime("all", backend=backend) as rt:
        group = rt.sharded("accounts", shards=4).create(ShardAccount, 100)
        keys = [f"acct-{i}" for i in range(10)]

        def transferrer(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(12):
                src, dst = rng.sample(keys, 2)
                amount = rng.randint(1, 9)
                with group.separate() as g:
                    g.on(src).debit(amount)
                    g.on(dst).credit(amount)

        for i in range(3):
            rt.spawn_client(transferrer, i, name=f"transfer-{i}")
        rt.join_clients()
        with group.separate() as g:
            g.broadcast("credit", 5)
            per_shard = g.gather("read")
            total = g.gather("read", merge=sum)
            routed = g.query("acct-0", "read")
        routes = [group.shard_of(k) for k in keys]
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    return {"per_shard": per_shard, "total": total, "routed": routed,
            "routes": routes, "counters": counters}


# ----------------------------------------------------------------------------
# the ring
# ----------------------------------------------------------------------------
class TestHashRing:
    def test_every_shard_owns_keys(self):
        ring = HashRing(4, name="t")
        owners = {ring.owner_of(f"key-{i}") for i in range(500)}
        assert owners == {0, 1, 2, 3}

    def test_routing_is_deterministic_across_ring_instances(self):
        a, b = HashRing(5, name="g"), HashRing(5, name="g")
        for i in range(200):
            assert a.owner_of(i) == b.owner_of(i)

    def test_distribution_is_roughly_even(self):
        ring = HashRing(4, name="t")
        counts = [0, 0, 0, 0]
        for i in range(4000):
            counts[ring.owner_of(f"key-{i}")] += 1
        # vnodes keep the arcs statistically even; a 3x skew would mean the
        # ring is broken, not merely unlucky
        assert max(counts) < 3 * min(counts)

    def test_consistent_hashing_moves_few_keys(self):
        old, new = HashRing(4, name="g"), HashRing(5, name="g")
        keys = [f"key-{i}" for i in range(2000)]
        moved = new.moved_keys(old, keys)
        # ideal is 1/5 of the key space; allow slack but reject modulo-style
        # reshuffling (which would move ~4/5 of the keys)
        assert 0 < len(moved) < len(keys) // 2

    def test_stable_key_bytes_distinguishes_types(self):
        encodings = {stable_key_bytes(k) for k in (1, "1", 1.0, True, b"1", (1,))}
        assert len(encodings) == 6

    def test_tuple_keys_are_canonical(self):
        assert stable_key_bytes(("a", 1)) == stable_key_bytes(("a", 1))
        assert stable_key_bytes(("ab", 1)) != stable_key_bytes(("a", "b1"))

    def test_unsupported_key_types_rejected(self):
        with pytest.raises(TypeError, match="shard_key function"):
            stable_key_bytes(object())
        with pytest.raises(TypeError):
            HashRing(2).owner_of(["list", "key"])

    def test_validation(self):
        with pytest.raises(ValueError):
            HashRing(0)
        with pytest.raises(ValueError):
            HashRing(2, vnodes=0)


# ----------------------------------------------------------------------------
# group construction and the reshard hook (in-memory backends via fixtures)
# ----------------------------------------------------------------------------
class TestGroupBasics:
    def test_handlers_named_and_counted(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=3).create(Cell)
        assert group.shards == 3
        assert [h.name for h in group.handlers] == [
            "cells/shard0", "cells/shard1", "cells/shard2"]

    def test_ref_for_matches_shard_of(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=3).create(Cell)
        for key in ("a", "b", 7, (1, "x")):
            assert group.ref_for(key) is group.refs[group.shard_of(key)]

    def test_shard_key_function_is_applied(self, qs_runtime):
        keyed = ShardedGroup(qs_runtime, "keyed", shards=3,
                             shard_key=lambda record: record["id"]).create(Cell)
        ring = HashRing(3, name="keyed")
        for i in range(20):
            assert keyed.shard_of({"id": f"u{i}"}) == ring.owner_of(f"u{i}")

    def test_unpopulated_group_rejects_blocks(self, qs_runtime):
        group = qs_runtime.sharded("empty", shards=2)
        with pytest.raises(ScoopError, match="no replicas"):
            group.separate()
        with pytest.raises(ScoopError, match="no replicas"):
            group.ref_for("k")

    def test_adopt_validates_replica_count_and_repopulation(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=2)
        with pytest.raises(ScoopError, match="2 shards"):
            group.adopt([Cell()])
        group.adopt([Cell(), Cell()])
        with pytest.raises(ScoopError, match="already has its replicas"):
            group.adopt([Cell(), Cell()])

    def test_zero_shards_rejected(self, qs_runtime):
        with pytest.raises(ScoopError, match="at least one shard"):
            qs_runtime.sharded("cells", shards=0)

    def test_plain_separate_works_on_a_shard_ref(self, qs_runtime):
        """A shard ref is an ordinary SeparateRef — usable without the proxy."""
        group = qs_runtime.sharded("cells", shards=2).create(Cell)
        with qs_runtime.separate(group.ref_for("k")) as cell:
            cell.add(3)
            assert cell.read() == 3

    def test_plan_reshard_reports_moved_keys_only(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=4).create(Cell)
        keys = [f"key-{i}" for i in range(400)]
        plan = group.plan_reshard(6, keys=keys)
        assert plan.old_shards == 4 and plan.new_shards == 6
        assert 0 < len(plan.moved) < len(keys)
        assert 0 < plan.moved_fraction < 1
        for key, old, new in plan.assignments:
            assert old == group.shard_of(key)
            assert (key in plan.moved) == (old != new)

    def test_plan_reshard_accepts_unhashable_keys_via_shard_key(self, qs_runtime):
        # routing accepts dict keys through shard_key; planning must too
        group = ShardedGroup(qs_runtime, "recs", shards=4,
                             shard_key=lambda record: record["id"]).create(Cell)
        keys = [{"id": f"u{i}"} for i in range(100)]
        plan = group.plan_reshard(5, keys=keys)
        assert len(plan.assignments) == 100
        for key, old, new in plan.assignments:
            assert old == group.shard_of(key)

    def test_topology_is_a_read_only_snapshot(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=3).create(Cell)
        topo = group.topology
        assert topo.group == "cells"
        assert topo.shards == 3
        assert topo.ring_epoch == 0
        assert [name for name, _ in topo.placement] == [h.name for h in group.handlers]
        with pytest.raises(Exception):  # frozen dataclass
            topo.shards = 5

    def test_rebalance_rejects_a_plan_for_another_group(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=2).create(Ledger)
        other = qs_runtime.sharded("other", shards=2).create(Ledger)
        plan = other.plan_reshard(3)
        with pytest.raises(ScoopError, match="is for group 'other'"):
            group.rebalance(plan)

    def test_rebalance_rejects_a_stale_plan(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=2).create(Ledger)
        stale = group.plan_reshard(3, keys=["a", "b"])
        group.rebalance(4, keys=["a", "b"])
        with pytest.raises(ScoopError, match="stale reshard plan"):
            group.rebalance(stale)

    def test_rebalance_requires_migration_hooks_when_keys_move(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=2).create(Cell)
        keys = [f"key-{i}" for i in range(50)]
        with pytest.raises(ScoopError, match="reshard_export"):
            group.rebalance(4, keys=keys)
        # ...but a reshard that moves nothing works without the hooks
        plan = group.rebalance(4)
        assert plan.moved == [] and group.shards == 4 and group.epoch == 1

    def test_growing_an_adopted_group_needs_replica_objects(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=2)
        group.adopt([Ledger(), Ledger()])
        with pytest.raises(ScoopError, match="populated via adopt"):
            group.rebalance(3)
        group.rebalance(3, replicas=[Ledger()])
        assert group.shards == 3
        with pytest.raises(ScoopError, match="1 replica objects were supplied"):
            group.rebalance(5, replicas=[Ledger()])

    def test_rebalance_to_the_same_ring_is_a_no_op(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=3).create(Ledger)
        plan = group.rebalance(3)
        assert plan.new_shards == 3
        assert group.epoch == 0  # identical ring: epoch not bumped


# ----------------------------------------------------------------------------
# behaviour on every backend
# ----------------------------------------------------------------------------
@pytest.mark.parametrize("backend", SHARD_BACKENDS)
class TestShardedOnEachBackend:
    def test_routed_requests_land_on_the_owner(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("cells", shards=3).create(Cell)
            keys = [f"key-{i}" for i in range(12)]
            with group.separate() as g:
                for key in keys:
                    g.on(key).add(1)
                per_shard = g.gather("read")
            expected = [0, 0, 0]
            for key in keys:
                expected[group.shard_of(key)] += 1
            assert per_shard == expected
            assert sum(per_shard) == len(keys)

    def test_gather_merges_identically(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("cells", shards=4).create(Cell, 10)
            with group.separate() as g:
                g.on("a").add(5)
                per_shard = g.gather("read")
                assert per_shard == g.gather("read")  # shard order is stable
                assert per_shard[group.shard_of("a")] == 15
                assert g.gather("read", merge=sum) == 45
                assert g.gather("read", merge=max) == 15

    def test_broadcast_reaches_every_shard(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("cells", shards=3).create(Cell)
            with group.separate() as g:
                g.broadcast("add", 7)
                assert g.gather("read") == [7, 7, 7]

    def test_explicit_call_and_query_route(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("cells", shards=3).create(Cell)
            with group.separate() as g:
                g.call("k1", "add", 4)
                assert g.query("k1", "read") == 4
                assert g.shard(group.shard_of("k1")).read() == 4

    def test_per_client_fifo_to_each_shard(self, backend):
        """A gather in the logging block sees every preceding routed add."""
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("cells", shards=3).create(Cell)
            for round_no in range(1, 6):
                with group.separate() as g:
                    for i in range(9):
                        g.on(f"key-{i}").add(1)
                    assert g.gather("read", merge=sum) == 9 * round_no


# ----------------------------------------------------------------------------
# live resharding on every backend
# ----------------------------------------------------------------------------
@pytest.mark.parametrize("backend", SHARD_BACKENDS)
class TestRebalanceOnEachBackend:
    KEYS = [f"acct-{i}" for i in range(12)]

    def _populate(self, group) -> None:
        with group.separate() as g:
            for n, key in enumerate(self.KEYS):
                g.on(key).record(key, n)

    def _collect(self, group) -> dict:
        with group.separate() as g:
            dumps = g.gather("dump")
        merged = {}
        for shard, dump in enumerate(dumps):
            for key, log in dump.items():
                assert key not in merged, f"{key!r} on two shards after reshard"
                merged[key] = (shard, log)
        return merged

    def test_grow_migrates_every_moved_key(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=3).create(Ledger)
            self._populate(group)
            plan = group.rebalance(5, keys=self.KEYS)
            assert group.shards == 5 and group.epoch == 1
            merged = self._collect(group)
            assert set(merged) == set(self.KEYS)
            for n, key in enumerate(self.KEYS):
                shard, log = merged[key]
                assert log == [n]
                assert shard == group.shard_of(key)  # final ring owns it
            stats = rt.stats()
            assert stats["reshard_moves"] == len(plan.moved) > 0
            assert stats["ring_epoch"] == 1

    def test_shrink_then_regrow_round_trips_state(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=4).create(Ledger)
            self._populate(group)
            group.rebalance(2, keys=self.KEYS)
            assert group.shards == 2
            # the regrown shards carry epoch-suffixed handler names (the
            # shrink retired the base names in the runtime registry)
            group.rebalance(4, keys=self.KEYS)
            assert group.shards == 4 and group.epoch == 2
            merged = self._collect(group)
            assert set(merged) == set(self.KEYS)
            for n, key in enumerate(self.KEYS):
                assert merged[key][1] == [n]
                assert merged[key][0] == group.shard_of(key)
            assert rt.stats()["ring_epoch"] == 2

    def test_traffic_lands_on_the_new_ring_after_rebalance(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=2).create(Ledger)
            self._populate(group)
            group.rebalance(5, keys=self.KEYS)
            with group.separate() as g:
                for key in self.KEYS:
                    g.on(key).record(key, "post")
            merged = self._collect(group)
            for n, key in enumerate(self.KEYS):
                # pre-reshard and post-reshard records meet on one shard,
                # in per-client order
                assert merged[key][1] == [n, "post"]

    def test_topology_reflects_the_new_placement(self, backend):
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=2).create(Ledger)
            before = group.topology
            group.rebalance(4, keys=[])
            after = group.topology
            assert before.shards == 2 and after.shards == 4
            assert after.ring_epoch == before.ring_epoch + 1
            assert len(after.placement) == 4
            hosts = dict(after.placement)
            if backend.startswith("process+async"):
                # hybrid placement names both halves: worker pid + client loop
                assert all(host.startswith("worker:") and "+loop:" in host
                           for host in hosts.values())
            elif backend == "process":
                assert all(host.startswith("worker:") for host in hosts.values())
            elif backend == "async":
                assert all(host.startswith("loop:") for host in hosts.values())
            else:
                assert set(hosts.values()) == {"in-process"}


# ----------------------------------------------------------------------------
# cross-backend parity (identical results AND counters)
# ----------------------------------------------------------------------------
def resharding_workload(backend: str) -> dict:
    """Records + two live reshards (grow, shrink); deterministic anywhere."""
    with QsRuntime("all", backend=backend) as rt:
        group = rt.sharded("ledgers", shards=3).create(Ledger)
        keys = [f"acct-{i}" for i in range(10)]
        with group.separate() as g:
            for n, key in enumerate(keys):
                g.on(key).record(key, n)
        group.rebalance(5, keys=keys)
        with group.separate() as g:
            for key in keys:
                g.on(key).record(key, "mid")
        group.rebalance(2, keys=keys)
        with group.separate() as g:
            dumps = g.gather("dump")
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    merged = {}
    for dump in dumps:
        merged.update(dump)
    return {"merged": merged, "shards": len(dumps), "counters": counters}


def test_resharding_backends_agree():
    results = {backend: resharding_workload(backend) for backend in SHARD_BACKENDS}
    reference = results["threads"]
    assert reference["shards"] == 2
    assert reference["counters"]["ring_epoch"] == 2
    assert reference["counters"]["reshard_moves"] > 0
    assert reference["counters"]["shard_failovers"] == 0
    for backend in SHARD_BACKENDS[1:]:
        assert results[backend] == reference, (
            f"resharding results and counters must not depend on the backend "
            f"({backend} vs threads)")


def test_sharded_backends_agree():
    results = {backend: sharded_workload(backend) for backend in SHARD_BACKENDS}
    reference = results["threads"]
    assert reference["total"] == 4 * 100 + 4 * 5
    for backend in SHARD_BACKENDS[1:]:
        assert results[backend] == reference, (
            f"sharded results and counters must not depend on the backend "
            f"({backend} vs threads)")


def test_sim_sharded_runs_are_reproducible():
    first = sharded_workload("sim")
    second = sharded_workload("sim")
    assert first == second


# ----------------------------------------------------------------------------
# scatter-gather across every optimization level (both query protocols)
# ----------------------------------------------------------------------------
@pytest.mark.parametrize("level", [level.value for level in LEVEL_ORDER])
def test_gather_on_every_level(level):
    """issue_query must work packaged (no client-executed queries) and split."""
    with QsRuntime(level) as rt:
        group = rt.sharded("cells", shards=3).create(Cell, 2)
        with group.separate() as g:
            g.on("x").add(1)
            assert g.gather("read", merge=sum) == 7
            # a second gather in the same block exercises sync coalescing
            assert g.gather("read", merge=sum) == 7
            assert sorted(g.gather("read")) == [2, 2, 3]


# ----------------------------------------------------------------------------
# the issue/wait split's misuse guards
# ----------------------------------------------------------------------------
class TestPendingQueryGuards:
    def test_waiting_twice_raises(self, qs_runtime):
        ref = qs_runtime.new_handler("cell").create(Cell, 4)
        client = qs_runtime.current_client()
        with qs_runtime.separate(ref):
            pending = client.issue_query(ref, "read")
            assert pending.wait() == 4
            with pytest.raises(ScoopError, match="already been consumed"):
                pending.wait()

    def test_logging_while_a_query_is_pending_raises(self, qs_runtime):
        # under client-executed queries the handler must stay parked between
        # the issued SYNC and the wait; another request would corrupt that
        ref = qs_runtime.new_handler("cell").create(Cell)
        client = qs_runtime.current_client()
        with qs_runtime.separate(ref) as cell:
            pending = client.issue_query(ref, "read")
            if qs_runtime.config.client_executed_queries:
                with pytest.raises(ScoopError, match="still pending"):
                    cell.add(1)
                with pytest.raises(ScoopError, match="still pending"):
                    client.issue_query(ref, "read")
            assert pending.wait() == 0
            cell.add(1)  # consumed: the handler is usable again
            assert cell.read() == 1

    def test_pending_query_to_another_handler_is_fine(self, qs_runtime):
        group = qs_runtime.sharded("cells", shards=2).create(Cell, 3)
        client = qs_runtime.current_client()
        with group.separate():
            first = client.issue_query(group.refs[0], "read")
            second = client.issue_query(group.refs[1], "read")
            assert (first.wait(), second.wait()) == (3, 3)

    def test_abandoned_pending_query_dies_with_its_block(self, qs_runtime):
        ref = qs_runtime.new_handler("cell").create(Cell)
        client = qs_runtime.current_client()
        with qs_runtime.separate(ref):
            client.issue_query(ref, "read")  # never waited for
        with qs_runtime.separate(ref) as cell:  # fresh block works normally
            cell.add(2)
            assert cell.read() == 2


# ----------------------------------------------------------------------------
# the awaitable proxy (coroutine clients, async backend)
# ----------------------------------------------------------------------------
class TestAsyncShardedProxy:
    def _thread_reference(self) -> dict:
        with QsRuntime("all", backend="async") as rt:
            group = rt.sharded("cells", shards=3).create(Cell)

            def client(seed: int) -> None:
                rng = random.Random(seed)
                for _ in range(10):
                    with group.separate() as g:
                        g.on(f"key-{rng.randint(0, 20)}").add(1)
                        g.gather("read", merge=sum)

            for i in range(3):
                rt.spawn_client(client, i, name=f"c-{i}")
            rt.join_clients()
            with group.separate() as g:
                final = g.gather("read")
            counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
        return {"final": final, "counters": counters}

    def _coroutine_run(self) -> dict:
        with QsRuntime("all", backend="async") as rt:
            group = rt.sharded("cells", shards=3).create(Cell)

            async def client(seed: int) -> None:
                rng = random.Random(seed)
                for _ in range(10):
                    async with group.separate_async() as g:
                        await g.on(f"key-{rng.randint(0, 20)}").add(1)
                        await g.gather("read", merge=sum)

            for i in range(3):
                rt.spawn_async_client(client, i, name=f"c-{i}")
            rt.join_clients()
            with group.separate() as g:
                final = g.gather("read")
            counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
        return {"final": final, "counters": counters}

    def test_coroutine_clients_match_thread_clients(self):
        assert self._coroutine_run() == self._thread_reference()

    def test_awaitable_surface(self):
        with QsRuntime("all", backend="async") as rt:
            group = rt.sharded("cells", shards=4).create(Cell, 1)
            observed = {}

            async def client() -> None:
                async with group.separate_async() as g:
                    await g.broadcast("add", 2)
                    await g.call("k", "add", 3)
                    observed["query"] = await g.query("k", "read")
                    observed["gather"] = await g.gather("read")
                    observed["merged"] = await g.gather("read", merge=sum)
                    observed["shard"] = await g.shard(0).read()

            rt.spawn_async_client(client)
            rt.join_clients()
        assert observed["query"] == 6
        assert sorted(observed["gather"]) == [3, 3, 3, 6]
        assert observed["merged"] == 15
        assert observed["shard"] == observed["gather"][0]


# ----------------------------------------------------------------------------
# process-backend placement
# ----------------------------------------------------------------------------
class TestProcessPlacement:
    def test_replicas_spread_round_robin_over_a_capped_pool(self):
        backend = ProcessBackend(processes=2)
        with QsRuntime("all", backend=backend) as rt:
            # earlier handlers shift the global assignment rotation...
            rt.new_handler("frontend")
            group = rt.sharded("cells", shards=4).create(Cell)
            # ...but replicas still pin deterministically to worker i % pool
            workers = [backend._assignment[h.name] for h in group.handlers]
            assert workers[0] is workers[2]
            assert workers[1] is workers[3]
            assert workers[0] is not workers[1]
            with group.separate() as g:
                g.broadcast("add", 1)
                assert g.gather("read", merge=sum) == 4

    def test_uncapped_pool_gives_every_replica_its_own_process(self):
        backend = ProcessBackend()
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("cells", shards=3).create(Cell)
            workers = {id(backend._assignment[h.name]) for h in group.handlers}
            assert len(workers) == 3
            with group.separate() as g:
                g.broadcast("add", 2)
                assert g.gather("read") == [2, 2, 2]
