"""Tests for runtime instrumentation (tracing) and the trace guarantee checker."""

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.core.guarantees import assert_guarantees, check_runtime, check_trace
from repro.errors import ScoopError
from repro.util.tracing import NullTracer, TraceEvent, Tracer


class Register(SeparateObject):
    def __init__(self):
        self.values = []

    @command
    def push(self, value):
        self.values.append(value)

    @query
    def size(self):
        return len(self.values)


class TestTracer:
    def test_records_in_sequence_order(self):
        tracer = Tracer()
        tracer.record("reserve", "h", client="c")
        tracer.record("log-call", "h", client="c", feature="f")
        events = tracer.events()
        assert [e.kind for e in events] == ["reserve", "log-call"]
        assert events[0].seq < events[1].seq

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Tracer().record("teleport", "h")

    def test_filtering_by_fields(self):
        tracer = Tracer()
        tracer.record("exec", "a", client="c1", feature="f")
        tracer.record("exec", "b", client="c1", feature="g")
        tracer.record("sync", "a", client="c2")
        assert len(tracer.events(kind="exec")) == 2
        assert [e.feature for e in tracer.events(handler="a", kind="exec")] == ["f"]

    def test_bounded_buffer_drops_and_counts(self):
        tracer = Tracer(max_events=2)
        for i in range(5):
            tracer.record("sync", "h", client=f"c{i}")
        assert len(tracer) == 2
        assert tracer.dropped == 3

    def test_clear_resets_everything(self):
        tracer = Tracer(max_events=1)
        tracer.record("sync", "h")
        tracer.record("sync", "h")
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.dropped == 0

    def test_counts_by_kind(self):
        tracer = Tracer()
        tracer.record("sync", "h")
        tracer.record("sync", "h")
        tracer.record("exec", "h")
        assert tracer.counts_by_kind() == {"sync": 2, "exec": 1}

    def test_null_tracer_is_inert_but_hands_out_block_ids(self):
        null = NullTracer()
        assert null.record("sync", "h") is None
        assert null.events() == []
        assert len(null) == 0
        a, b = null.next_block_id(), null.next_block_id()
        assert a != b

    def test_invalid_max_events_rejected(self):
        with pytest.raises(ValueError):
            Tracer(max_events=0)


class TestRuntimeTracing:
    def test_untraced_runtime_records_nothing(self):
        with QsRuntime("all") as rt:
            reg = rt.new_handler("reg").create(Register)
            with rt.separate(reg) as r:
                r.push(1)
            assert rt.trace_events() == []
            assert not rt.tracing_enabled

    def test_traced_runtime_records_full_block_lifecycle(self):
        with QsRuntime("all", trace=True) as rt:
            reg = rt.new_handler("reg").create(Register)
            with rt.separate(reg) as r:
                r.push(1)
                r.push(2)
                assert r.size() == 2
            rt.handler("reg").shutdown()
            kinds = {e.kind for e in rt.trace_events(handler="reg")}
            assert {"reserve", "log-call", "log-query", "release", "exec"} <= kinds
            # both pushes executed by the handler, in order
            execs = [e.feature for e in rt.trace_events(handler="reg", kind="exec")]
            assert execs == ["push", "push"]

    def test_dynamic_coalescing_shows_up_as_elided_syncs(self):
        with QsRuntime("all", trace=True) as rt:
            reg = rt.new_handler("reg").create(Register)
            with rt.separate(reg) as r:
                r.size()
                r.size()
                r.size()
            events = rt.trace_events(handler="reg")
        syncs = [e for e in events if e.kind == "sync"]
        elided = [e for e in events if e.kind == "sync-elided"]
        assert len(syncs) == 1
        assert len(elided) == 2

    def test_every_optimization_level_satisfies_the_guarantees(self, level):
        with QsRuntime(level, trace=True) as rt:
            reg = rt.new_handler("reg").create(Register)

            def client(n):
                for i in range(3):
                    with rt.separate(reg) as r:
                        r.push((n, i))
                        r.size()

            threads = [rt.spawn_client(client, n, name=f"client-{n}") for n in range(3)]
            rt.join_clients()
            rt.handler("reg").shutdown()
            report = check_runtime(rt)
            assert report.ok, [str(v) for v in report.violations]
            # 3 clients x 3 blocks all served
            assert len(report.service_order["reg"]) == 9

    def test_check_runtime_requires_tracing(self):
        with QsRuntime("all") as rt:
            with pytest.raises(ScoopError):
                check_runtime(rt)


class TestGuaranteeChecker:
    @staticmethod
    def _event(seq, kind, **kw):
        return TraceEvent(seq=seq, kind=kind, handler=kw.pop("handler", "h"), **kw)

    def test_clean_trace_passes(self):
        events = [
            self._event(0, "reserve", client="a", block=1),
            self._event(1, "log-call", client="a", feature="f", block=1),
            self._event(2, "log-call", client="a", feature="g", block=1),
            self._event(3, "release", client="a", block=1),
            self._event(4, "exec", client="a", feature="f", block=1),
            self._event(5, "exec", client="a", feature="g", block=1),
            self._event(6, "end-block", client="a", block=1),
        ]
        report = check_trace(events)
        assert report.ok
        assert report.service_order["h"] == [1]

    def test_out_of_order_execution_detected(self):
        events = [
            self._event(0, "log-call", client="a", feature="f", block=1),
            self._event(1, "log-call", client="a", feature="g", block=1),
            self._event(2, "exec", client="a", feature="g", block=1),
            self._event(3, "exec", client="a", feature="f", block=1),
        ]
        report = check_trace(events)
        assert any(v.kind == "order" for v in report.violations)

    def test_interleaved_blocks_detected(self):
        events = [
            self._event(0, "log-call", client="a", feature="f1", block=1),
            self._event(1, "log-call", client="a", feature="f2", block=1),
            self._event(2, "log-call", client="b", feature="g", block=2),
            self._event(3, "exec", client="a", feature="f1", block=1),
            self._event(4, "exec", client="b", feature="g", block=2),
            self._event(5, "exec", client="a", feature="f2", block=1),
        ]
        report = check_trace(events)
        assert any(v.kind == "interleaving" for v in report.violations)

    def test_lost_call_detected_only_for_released_blocks(self):
        lost = [
            self._event(0, "log-call", client="a", feature="f", block=1),
            self._event(1, "release", client="a", block=1),
        ]
        assert any(v.kind == "lost-call" for v in check_trace(lost).violations)

        still_open = [self._event(0, "log-call", client="a", feature="f", block=1)]
        assert check_trace(still_open).ok

    def test_foreign_execution_detected(self):
        events = [
            self._event(0, "log-call", client="a", feature="f", block=1),
            self._event(1, "exec", client="a", feature="f", block=1),
            self._event(2, "exec", client="a", feature="phantom", block=1),
        ]
        report = check_trace(events)
        assert any(v.kind == "foreign-exec" for v in report.violations)

    def test_assert_guarantees_raises_with_summary(self):
        events = [
            self._event(0, "log-call", client="a", feature="f", block=1),
            self._event(1, "log-call", client="a", feature="g", block=1),
            self._event(2, "exec", client="a", feature="g", block=1),
        ]
        with pytest.raises(ScoopError) as err:
            assert_guarantees(events)
        assert "order" in str(err.value)
