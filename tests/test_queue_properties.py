"""Property-based tests (hypothesis) for the queue substrate invariants.

Three contracts the runtime's correctness leans on:

* the queue-of-queues preserves each client's reservation order (per-client
  FIFO — the basis of reasoning guarantee 2);
* ``PrivateQueue.dequeue_batch`` is observationally equivalent to repeated
  ``dequeue`` — batching is a mechanical fast path, not a semantic change —
  and never lets a batch cross an END marker;
* ``QueueOfQueues.dequeue`` keeps "timed out, try again" (``None``) distinct
  from "closed and drained" (``SHUTDOWN``) for every operation sequence.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.queues.private_queue import CallRequest, END, EndMarker, PrivateQueue
from repro.queues.qoq import SHUTDOWN, QueueOfQueues

#: a client's reservation stream: client id -> number of private queues
clients_strategy = st.dictionaries(
    keys=st.integers(min_value=0, max_value=4),
    values=st.integers(min_value=1, max_value=6),
    min_size=1,
    max_size=5,
)

#: an interleaved request stream: "c" = call, "e" = END (block boundary)
requests_strategy = st.lists(st.sampled_from("ccce"), min_size=0, max_size=40)


def make_call(tag: int) -> CallRequest:
    return CallRequest(fn=lambda: tag, feature=f"call-{tag}")


class TestQoqPerClientFifo:
    @given(clients=clients_strategy, order=st.randoms(use_true_random=False))
    @settings(max_examples=60)
    def test_interleaved_reservations_keep_per_client_order(self, clients, order):
        """However client streams interleave, each client's queues stay FIFO."""
        qoq = QueueOfQueues()
        pending = {client: list(range(count)) for client, count in clients.items()}
        tagged = []
        while pending:
            client = order.choice(sorted(pending))
            seq = pending[client].pop(0)
            if not pending[client]:
                del pending[client]
            queue = PrivateQueue()
            queue.client_name = f"client-{client}"
            queue.block_id = seq
            qoq.enqueue(queue)
            tagged.append((client, seq))

        drained = []
        while True:
            item = qoq.try_dequeue()
            if item is None:
                break
            drained.append((int(item.client_name.split("-")[1]), item.block_id))

        # global FIFO implies per-client FIFO; check both explicitly
        assert drained == tagged
        for client in clients:
            seqs = [seq for c, seq in drained if c == client]
            assert seqs == sorted(seqs)


class TestBatchEquivalence:
    @given(script=requests_strategy, batch_size=st.integers(min_value=1, max_value=7))
    @settings(max_examples=80)
    def test_dequeue_batch_equals_repeated_dequeue(self, script, batch_size):
        plain, batched = PrivateQueue(), PrivateQueue()
        for index, op in enumerate(script):
            for queue in (plain, batched):
                if op == "c":
                    queue.enqueue_call(make_call(index))
                else:
                    queue._queue.put(END)  # raw END: enqueue_end() closes the queue

        one_by_one = []
        while True:
            item = plain.dequeue(timeout=0)
            if item is None:
                break
            one_by_one.append(item)

        in_batches = []
        while True:
            batch = batched.dequeue_batch(batch_size, timeout=0)
            if not batch:
                break
            # a batch never crosses a block boundary: END only ever comes last
            assert all(not isinstance(item, EndMarker) for item in batch[:-1])
            assert len(batch) <= batch_size
            in_batches.extend(batch)

        def describe(items):
            return [
                "END" if isinstance(item, EndMarker) else item.feature
                for item in items
            ]

        assert describe(in_batches) == describe(one_by_one)


class TestTimeoutVersusShutdown:
    @given(script=st.lists(st.sampled_from("edc"), min_size=0, max_size=20))
    @settings(max_examples=60)
    def test_none_means_retry_shutdown_means_done(self, script):
        """``None`` only while open; ``SHUTDOWN`` only after close + drain."""
        qoq = QueueOfQueues()
        backlog = 0
        for op in script:
            if op == "e":
                qoq.enqueue(PrivateQueue())
                backlog += 1
            elif op == "d":
                item = qoq.dequeue(timeout=0)
                if backlog:
                    assert item is not SHUTDOWN and item is not None
                    backlog -= 1
                else:
                    assert item is None, "an open empty queue times out with None"
            else:
                item = qoq.try_dequeue()
                if backlog:
                    assert item is not SHUTDOWN and item is not None
                    backlog -= 1
                else:
                    assert item is None

        qoq.close()
        # after close: the backlog still drains, then SHUTDOWN forever
        for _ in range(backlog):
            assert qoq.dequeue(timeout=0) not in (None, SHUTDOWN)
        assert qoq.dequeue(timeout=0) is SHUTDOWN
        assert qoq.try_dequeue() is SHUTDOWN
        assert qoq.dequeue(timeout=0.001) is SHUTDOWN
