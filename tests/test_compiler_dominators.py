"""Tests for dominator computation and dominance frontiers."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.builder import FunctionBuilder, fig14_loop
from repro.compiler.dominators import compute_dominators, dominator_tree_lines
from repro.errors import CompilerError


def diamond():
    """entry -> (left | right) -> join."""
    b = FunctionBuilder("diamond", entry="entry")
    b.block("entry").local("cond").branch("left", "right")
    b.block("left").local("l").jump("join")
    b.block("right").local("r").jump("join")
    b.block("join").local("j").ret()
    return b.build()


def nested_loops():
    """entry -> outer_head -> inner_head -> inner_body -> (inner_head | outer_latch)
    outer_latch -> (outer_head | exit)."""
    b = FunctionBuilder("nested", entry="entry")
    b.block("entry").local().jump("outer_head")
    b.block("outer_head").local().jump("inner_head")
    b.block("inner_head").local().jump("inner_body")
    b.block("inner_body").local().branch("inner_head", "outer_latch")
    b.block("outer_latch").local().branch("outer_head", "exit")
    b.block("exit").local().ret()
    return b.build()


class TestImmediateDominators:
    def test_entry_is_its_own_idom(self):
        tree = compute_dominators(diamond())
        assert tree.immediate_dominator("entry") is None
        assert tree.idom["entry"] == "entry"

    def test_diamond_join_dominated_by_entry_not_by_arms(self):
        tree = compute_dominators(diamond())
        assert tree.immediate_dominator("join") == "entry"
        assert tree.dominates("entry", "join")
        assert not tree.dominates("left", "join")
        assert not tree.dominates("right", "join")

    def test_straightline_chain_of_dominators(self):
        fn = fig14_loop()
        tree = compute_dominators(fn)
        assert tree.dominators_of("B3") == ["B3", "B2", "B1"]
        assert tree.depth("B3") == 2

    def test_loop_body_dominated_by_header(self):
        tree = compute_dominators(nested_loops())
        assert tree.dominates("outer_head", "inner_body")
        assert tree.dominates("inner_head", "inner_body")
        assert not tree.dominates("inner_body", "inner_head")

    def test_strict_dominance_excludes_self(self):
        tree = compute_dominators(diamond())
        assert tree.dominates("left", "left")
        assert not tree.strictly_dominates("left", "left")

    def test_children_partition_reachable_blocks(self):
        fn = nested_loops()
        tree = compute_dominators(fn)
        all_children = [c for kids in tree.children.values() for c in kids]
        # every reachable block except the entry appears exactly once as a child
        assert sorted(all_children) == sorted(set(fn.reachable_blocks()) - {"entry"})

    def test_unreachable_block_rejected_in_queries(self):
        b = FunctionBuilder("unreach", entry="entry")
        b.block("entry").local().ret()
        b.block("island").local().ret()
        tree = compute_dominators(b.build())
        with pytest.raises(CompilerError):
            tree.dominates("entry", "island")

    def test_unknown_block_rejected(self):
        tree = compute_dominators(diamond())
        with pytest.raises(CompilerError):
            tree.dominators_of("nope")


class TestDominanceFrontier:
    def test_diamond_frontier_is_join(self):
        tree = compute_dominators(diamond())
        frontier = tree.dominance_frontier()
        assert frontier["left"] == ["join"]
        assert frontier["right"] == ["join"]
        assert frontier["join"] == []

    def test_loop_header_in_its_latch_frontier(self):
        fn = fig14_loop()  # B2 branches back to itself
        tree = compute_dominators(fn)
        frontier = tree.dominance_frontier()
        assert "B2" in frontier["B2"]

    def test_tree_printer_lists_every_reachable_block_once(self):
        fn = nested_loops()
        tree = compute_dominators(fn)
        lines = [line.strip() for line in dominator_tree_lines(tree)]
        assert sorted(lines) == sorted(fn.reachable_blocks())


class TestDominatorProperties:
    @given(data=st.data(), n_blocks=st.integers(min_value=2, max_value=8))
    @settings(max_examples=60, deadline=None)
    def test_idom_strictly_dominates_and_entry_dominates_all(self, data, n_blocks):
        """On random CFGs: the entry dominates every reachable block, and every
        non-entry block's immediate dominator strictly dominates it."""
        names = [f"b{i}" for i in range(n_blocks)]
        b = FunctionBuilder("random", entry="b0")
        for i, name in enumerate(names):
            # successors drawn from the full block set; may create loops
            n_succ = data.draw(st.integers(min_value=0, max_value=2), label=f"succ_count_{i}")
            succs = data.draw(
                st.lists(st.sampled_from(names), min_size=n_succ, max_size=n_succ, unique=True),
                label=f"succs_{i}",
            )
            builder = b.block(name).local(f"body {name}")
            if succs:
                builder.branch(*succs)
            else:
                builder.ret()
        fn = b.build()
        tree = compute_dominators(fn)
        for block in fn.reachable_blocks():
            assert tree.dominates("b0", block)
            idom = tree.immediate_dominator(block)
            if block != "b0":
                assert idom is not None
                assert tree.strictly_dominates(idom, block)

    @given(n=st.integers(min_value=1, max_value=30))
    @settings(max_examples=20, deadline=None)
    def test_linear_chain_dominators_are_prefixes(self, n):
        b = FunctionBuilder("chain", entry="b0")
        for i in range(n):
            blk = b.block(f"b{i}").local()
            if i + 1 < n:
                blk.jump(f"b{i+1}")
            else:
                blk.ret()
        tree = compute_dominators(b.build())
        assert tree.dominators_of(f"b{n-1}") == [f"b{i}" for i in range(n - 1, -1, -1)]
