"""Tests for wait conditions (separate blocks guarded by supplier predicates)."""

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.core.conditions import WaitStrategy
from repro.errors import WaitConditionTimeout


class Buffer(SeparateObject):
    """An unbounded producer/consumer buffer (the prodcons supplier)."""

    def __init__(self):
        self.items = []

    @command
    def put(self, item):
        self.items.append(item)

    @query
    def take(self):
        return self.items.pop(0)

    @query
    def count(self):
        return len(self.items)


class Flag(SeparateObject):
    def __init__(self):
        self.value = 0

    @command
    def set(self, value):
        self.value = value

    @query
    def get(self):
        return self.value


class TestWaitStrategy:
    def test_backoff_grows_and_saturates(self):
        strategy = WaitStrategy(initial_backoff=0.001, max_backoff=0.004, multiplier=2.0)
        b = strategy.initial_backoff
        seen = []
        for _ in range(5):
            b = strategy.next_backoff(b)
            seen.append(b)
        assert seen == [0.002, 0.004, 0.004, 0.004, 0.004]


class TestWaitConditions:
    def test_condition_already_true_enters_immediately(self):
        with QsRuntime("all") as rt:
            buf = rt.new_handler("buf").create(Buffer)
            with rt.separate(buf) as b:
                b.put("x")
            block = rt.separate(buf, wait_until=lambda b: b.count() > 0)
            with block as b:
                assert b.take() == "x"
            assert block.wait_outcome is not None
            assert block.wait_outcome.satisfied_immediately

    def test_consumer_waits_for_producer(self):
        """The prodcons pattern of Section 4.1.2: the consumer's wait condition
        releases the buffer so the producer can fill it."""
        with QsRuntime("all") as rt:
            buf = rt.new_handler("buf").create(Buffer)
            consumed = []

            def consumer():
                for _ in range(5):
                    with rt.separate(buf, wait_until=lambda b: b.count() > 0) as b:
                        consumed.append(b.take())

            def producer():
                for i in range(5):
                    with rt.separate(buf) as b:
                        b.put(i)

            rt.spawn_client(consumer, name="consumer")
            rt.spawn_client(producer, name="producer")
            rt.join_clients()
            assert consumed == [0, 1, 2, 3, 4]

    def test_retries_are_counted(self):
        with QsRuntime("all") as rt:
            flag = rt.new_handler("flag").create(Flag)

            def setter():
                with rt.separate(flag) as f:
                    f.set(1)

            # force at least one failed attempt by checking before the setter runs
            block = rt.separate(flag, wait_until=lambda f: f.get() == 1)
            rt.spawn_client(setter, name="setter")
            with block as f:
                assert f.get() == 1
            assert rt.stats()["wait_condition_retries"] == block.wait_outcome.retries
            rt.join_clients()

    def test_timeout_raises_and_releases(self):
        with QsRuntime("all") as rt:
            flag = rt.new_handler("flag").create(Flag)
            with pytest.raises(WaitConditionTimeout):
                with rt.separate(flag, wait_until=lambda f: f.get() == 42, wait_timeout=0.05):
                    pytest.fail("the body must not run when the condition never holds")
            # the handler is free again: a plain block still works
            with rt.separate(flag) as f:
                f.set(42)
                assert f.get() == 42

    def test_max_retries_strategy_gives_up(self):
        from repro.core.separate import SeparateBlock

        with QsRuntime("all") as rt:
            flag = rt.new_handler("flag").create(Flag)
            client = rt.current_client()
            block = SeparateBlock(client, [flag], wait_until=lambda f: False,
                                  wait_strategy=WaitStrategy(max_retries=3, initial_backoff=0.0))
            with pytest.raises(WaitConditionTimeout) as err:
                block.__enter__()
            assert "3 attempts" in str(err.value)

    def test_predicate_exception_propagates_and_releases(self):
        with QsRuntime("all") as rt:
            flag = rt.new_handler("flag").create(Flag)
            with pytest.raises(RuntimeError):
                with rt.separate(flag, wait_until=lambda f: (_ for _ in ()).throw(RuntimeError("boom"))):
                    pass
            # reservation was rolled back: the handler accepts new blocks
            with rt.separate(flag) as f:
                f.set(7)
                assert f.get() == 7

    def test_multi_handler_wait_condition(self):
        """Fig. 5 style: wait until both reserved objects have the same colour."""
        with QsRuntime("all") as rt:
            x = rt.new_handler("x").create(Flag)
            y = rt.new_handler("y").create(Flag)

            def painter():
                with rt.separate(x, y) as (fx, fy):
                    fx.set(3)
                    fy.set(3)

            block = rt.separate(x, y, wait_until=lambda fx, fy: fx.get() == fy.get() == 3)
            rt.spawn_client(painter, name="painter")
            with block as (fx, fy):
                assert fx.get() == fy.get() == 3
            rt.join_clients()

    def test_wait_retry_events_traced(self):
        with QsRuntime("all", trace=True) as rt:
            flag = rt.new_handler("flag").create(Flag)

            def setter():
                with rt.separate(flag) as f:
                    f.set(1)

            block = rt.separate(flag, wait_until=lambda f: f.get() == 1)
            rt.spawn_client(setter, name="setter")
            with block:
                pass
            rt.join_clients()
            retries = rt.trace_events(kind="wait-retry", handler="flag")
            assert len(retries) == block.wait_outcome.retries
