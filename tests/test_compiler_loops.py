"""Tests for natural-loop detection and the sync-hoisting pass."""


from repro.compiler.alias import AliasInfo
from repro.compiler.builder import FunctionBuilder, fig14_loop, fig15_loop
from repro.compiler.ir import SyncInstr
from repro.compiler.loops import find_loops, preheader_candidate, verify_loop_info
from repro.compiler.sync_elision import SyncElisionPass
from repro.compiler.sync_hoisting import SyncHoistingPass
from repro.compiler.verify import verify_elision_safety, verify_function


def loop_without_preloop_sync():
    """A pull loop whose *only* sync is inside the body (no Fig. 14 B1 sync).

    head:  (no handler traffic)
    body:  sync h_p ; x[i] := a[i]    -> body | exit
    exit:  (nothing)
    """
    b = FunctionBuilder("body_only_sync", entry="head")
    b.block("head").local("i := 0").jump("body")
    b.block("body").sync("h_p").local("x[i] := a[i]", handler="h_p").branch("body", "exit")
    b.block("exit").local("done").ret()
    return b.build()


def nested_loop_function():
    b = FunctionBuilder("nested", entry="entry")
    b.block("entry").local().jump("outer")
    b.block("outer").local().jump("inner")
    b.block("inner").sync("h_p").local("pull", handler="h_p").branch("inner", "latch")
    b.block("latch").local().branch("outer", "exit")
    b.block("exit").local().ret()
    return b.build()


class TestLoopDetection:
    def test_fig14_self_loop_found(self):
        info = find_loops(fig14_loop())
        assert len(info.loops) == 1
        loop = info.loops[0]
        assert loop.header == "B2"
        assert loop.blocks == frozenset({"B2"})
        assert loop.back_edges == (("B2", "B2"),)
        verify_loop_info(info)

    def test_loop_exits_identified(self):
        info = find_loops(fig14_loop())
        (loop,) = info.loops
        assert loop.exits(info.function) == [("B2", "B3")]

    def test_straightline_function_has_no_loops(self):
        b = FunctionBuilder("straight", entry="a")
        b.block("a").sync("h").jump("b")
        b.block("b").query("h").ret()
        info = find_loops(b.build())
        assert info.loops == []

    def test_nested_loops_and_containment(self):
        info = find_loops(nested_loop_function())
        headers = {loop.header for loop in info.loops}
        assert headers == {"outer", "inner"}
        outer = info.loop_with_header("outer")
        inner = info.loop_with_header("inner")
        assert outer.contains_loop(inner)
        assert not inner.contains_loop(outer)
        assert info.parent_of(inner) is outer
        assert info.parent_of(outer) is None
        assert info.top_level_loops() == [outer]
        verify_loop_info(info)

    def test_nesting_depth(self):
        info = find_loops(nested_loop_function())
        assert info.nesting_depth("inner") == 2
        assert info.nesting_depth("latch") == 1
        assert info.nesting_depth("entry") == 0
        assert info.innermost_loop_of("inner").header == "inner"

    def test_preheader_candidate_unique_entry(self):
        fn = loop_without_preloop_sync()
        info = find_loops(fn)
        (loop,) = info.loops
        assert preheader_candidate(fn, loop) == "head"

    def test_preheader_candidate_missing_when_two_entries(self):
        b = FunctionBuilder("two_entries", entry="e")
        b.block("e").local().branch("p1", "p2")
        b.block("p1").local().jump("loop")
        b.block("p2").local().jump("loop")
        b.block("loop").sync("h").branch("loop", "out")
        b.block("out").local().ret()
        fn = b.build()
        (loop,) = find_loops(fn).loops
        assert preheader_candidate(fn, loop) is None

    def test_loop_invalidation_facts(self):
        info_fig15 = find_loops(fig15_loop())
        (loop,) = info_fig15.loops
        worst = AliasInfo.worst_case()
        distinct = AliasInfo.no_aliasing(["h_p", "i_p"])
        # with worst-case aliasing the async call on i_p invalidates h_p ...
        assert info_fig15.loop_invalidates(loop, "h_p", worst)
        # ... but with the variables declared distinct it does not
        assert not info_fig15.loop_invalidates(loop, "h_p", distinct)


class TestSyncHoisting:
    def test_hoists_body_sync_into_preheader(self):
        fn = loop_without_preloop_sync()
        optimized, report = SyncHoistingPass().run(fn)
        assert report.hoisted == [("h_p", "body", "head")]
        # the pre-header now ends with the sync and the body sync is gone
        head_instrs = optimized.block("head").instructions
        assert any(isinstance(i, SyncInstr) and i.handler == "h_p" for i in head_instrs)
        assert not any(isinstance(i, SyncInstr) for i in optimized.block("body").instructions)
        assert verify_function(optimized) == []

    def test_hoisting_preserves_sync_before_reads(self):
        fn = loop_without_preloop_sync()
        optimized, _ = SyncHoistingPass().run(fn)
        assert verify_elision_safety(fn, optimized) == []

    def test_elision_alone_cannot_remove_the_body_sync(self):
        """The baseline pass keeps the body sync because the entry edge into
        the loop is unsynced; hoisting is what unlocks the removal."""
        fn = loop_without_preloop_sync()
        elided, report = SyncElisionPass().run(fn)
        assert report.removed_syncs == 0
        assert any(isinstance(i, SyncInstr) for i in elided.block("body").instructions)

    def test_aliased_async_call_blocks_hoisting(self):
        b = FunctionBuilder("aliased", entry="head")
        b.block("head").local().jump("body")
        (
            b.block("body")
            .sync("h_p")
            .local("pull", handler="h_p")
            .async_call("i_p", note="push")
            .branch("body", "exit")
        )
        b.block("exit").local().ret()
        fn = b.build()
        _, report = SyncHoistingPass(AliasInfo.worst_case()).run(fn)
        assert report.hoisted == []
        assert "body" in report.skipped

    def test_distinct_aliases_unlock_hoisting(self):
        b = FunctionBuilder("aliased", entry="head")
        b.block("head").local().jump("body")
        (
            b.block("body")
            .sync("h_p")
            .local("pull", handler="h_p")
            .async_call("i_p", note="push")
            .branch("body", "exit")
        )
        b.block("exit").local().ret()
        fn = b.build()
        optimized, report = SyncHoistingPass(AliasInfo.no_aliasing(["h_p", "i_p"])).run(fn)
        assert ("h_p", "body", "head") in report.hoisted
        assert not any(isinstance(i, SyncInstr) for i in optimized.block("body").instructions)

    def test_conditional_sync_not_hoisted(self):
        """A sync that only runs on some iterations must stay where it is."""
        b = FunctionBuilder("conditional", entry="head")
        b.block("head").local().jump("loop_head")
        b.block("loop_head").local("if cond").branch("maybe_sync", "latch")
        b.block("maybe_sync").sync("h_p").local("pull", handler="h_p").jump("latch")
        b.block("latch").local().branch("loop_head", "exit")
        b.block("exit").local().ret()
        fn = b.build()
        _, report = SyncHoistingPass().run(fn)
        assert report.hoisted == []

    def test_fig14_hoisting_is_a_no_op_but_still_elides(self):
        """Fig. 14 already has the pre-loop sync; hoisting adds nothing and the
        follow-up elision matches the plain elision pass."""
        fn = fig14_loop()
        hoisted, report = SyncHoistingPass().run(fn)
        _, plain = SyncElisionPass().run(fn)
        assert report.elision is not None
        assert report.elision.removed_syncs == plain.removed_syncs
        assert hoisted.count_instructions(SyncInstr) == 1

    def test_without_elide_flag_body_sync_remains(self):
        fn = loop_without_preloop_sync()
        optimized, report = SyncHoistingPass(then_elide=False).run(fn)
        assert report.elision is None
        # hoisted copy added but the original body sync is untouched
        assert any(isinstance(i, SyncInstr) for i in optimized.block("body").instructions)
        assert any(isinstance(i, SyncInstr) for i in optimized.block("head").instructions)
