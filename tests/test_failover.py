"""Worker fault tolerance on the process backend.

The contract under test (see ``docs/backends.md``): when a worker process
dies mid-run, the parent detects the broken framed connections, re-pins the
dead worker's handlers onto survivors (capped pools) or fresh processes
(uncapped pools), restores hosted objects from their adopt-time snapshots,
and replays the frame journal in ticket order — so every client's request
sequence completes without a drop or a reorder, and ``shard_failovers``
counts the re-pinned handlers.  With ``failover=False`` the backend keeps
the old fail-stop behaviour.
"""

from __future__ import annotations

import os
import signal
import time

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.backends import ProcessBackend
from repro.errors import ScoopError


class Ledger(SeparateObject):
    """Per-key append logs (module-level so workers can unpickle it)."""

    def __init__(self) -> None:
        self.logs = {}

    @command
    def record(self, key, value) -> None:
        self.logs.setdefault(key, []).append(value)

    @query
    def dump(self) -> dict:
        return {key: list(log) for key, log in self.logs.items()}

    def reshard_export(self, keys):
        return {key: self.logs.pop(key) for key in keys if key in self.logs}

    def reshard_import(self, state) -> None:
        for key, log in state.items():
            self.logs.setdefault(key, []).extend(log)


def _kill_worker_of(backend: ProcessBackend, handler_name: str) -> int:
    """SIGKILL the worker hosting ``handler_name``; returns its pid."""
    worker = backend._assignment[handler_name]
    pid = worker.proc.pid
    os.kill(pid, signal.SIGKILL)
    worker.proc.wait(timeout=10.0)
    return pid


KEYS = [f"acct-{i}" for i in range(8)]


class TestWorkerFailover:
    def test_killed_worker_mid_workload_completes_via_failover(self):
        """The acceptance scenario: concurrent clients keep recording while a
        worker is killed; every record survives and ``shard_failovers`` counts
        the re-pinned handler."""
        backend = ProcessBackend(processes=2)
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=2).create(Ledger)

            def client(i: int) -> None:
                for j in range(20):
                    key = KEYS[(i + j) % len(KEYS)]
                    with group.separate() as g:
                        g.on(key).record(key, (f"c{i}", j))

            for i in range(3):
                rt.spawn_client(client, i, name=f"rec-{i}")
            time.sleep(0.05)  # let the clients get going
            _kill_worker_of(backend, "ledgers/shard0")
            rt.join_clients()

            with group.separate() as g:
                dumps = g.gather("dump")
            per_client = {}
            for dump in dumps:
                for log in dump.values():
                    for client_id, j in log:
                        per_client.setdefault(client_id, []).append(j)
            # zero dropped, zero reordered: each client's 20 sequenced
            # records all arrive, and per key in issue order
            assert {c: sorted(js) for c, js in per_client.items()} == {
                f"c{i}": list(range(20)) for i in range(3)}
            for dump in dumps:
                for log in dump.values():
                    seen = {}
                    for client_id, j in log:
                        assert seen.get(client_id, -1) < j, (
                            f"client {client_id} reordered in {log}")
                        seen[client_id] = j
            assert rt.stats()["shard_failovers"] >= 1

    def test_mid_block_failure_replays_in_flight_frames(self):
        backend = ProcessBackend(processes=2)
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=2).create(Ledger)
            with group.separate() as g:
                g.on(KEYS[0]).record("a", 1)
                # consume a genuine reply, so the replayed one must be
                # recognised as stale and discarded
                assert g.on(KEYS[0]).dump() == {"a": [1]}
                _kill_worker_of(backend, "ledgers/shard0")
                g.on(KEYS[0]).record("a", 2)
                assert g.on(KEYS[0]).dump() == {"a": [1, 2]}
            assert rt.stats()["shard_failovers"] == 1

    def test_uncapped_pool_replaces_the_dead_worker_with_a_fresh_process(self):
        backend = ProcessBackend()  # one process per handler
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=2).create(Ledger)
            with group.separate() as g:
                g.on(KEYS[0]).record("a", 1)
            placement = dict(group.topology.placement)
            dead_pid = _kill_worker_of(backend, "ledgers/shard0")
            with group.separate() as g:
                g.on(KEYS[0]).record("a", 2)
            after = dict(group.topology.placement)
            assert after["ledgers/shard0"] != f"worker:{dead_pid}"
            # the survivor's placement is untouched; the orphan got its own
            # fresh process, preserving the one-process-per-handler shape
            assert after["ledgers/shard1"] == placement["ledgers/shard1"]
            assert after["ledgers/shard0"] != after["ledgers/shard1"]

    def test_plain_handlers_fail_over_too(self):
        """Failover is a backend property, not a sharding feature."""
        backend = ProcessBackend(processes=2)
        with QsRuntime("all", backend=backend) as rt:
            ref = rt.new_handler("ledger").create(Ledger)
            with rt.separate(ref) as led:
                led.record("k", 1)
            _kill_worker_of(backend, "ledger")
            with rt.separate(ref) as led:
                led.record("k", 2)
                assert led.dump() == {"k": [1, 2]}
            assert rt.stats()["shard_failovers"] == 1

    def test_fire_and_forget_block_into_a_dead_worker_is_not_lost(self):
        """A coalesced block with no reply wait must not vanish silently.

        The whole block leaves in *one* sendall, and a sendall into a
        freshly killed worker succeeds (the kernel buffers it before the
        RST lands) — so without the post-flush liveness probe the client
        completes the block, nobody replays it, and its ticket becomes a
        gap that wedges the replacement's in-order drain forever."""
        backend = ProcessBackend(processes=2)
        backend.reply_timeout = 30.0  # fail fast if the drain wedges
        with QsRuntime("all", backend=backend) as rt:
            ref = rt.new_handler("ledger").create(Ledger)
            with rt.separate(ref) as led:
                led.record("k", 1)
            _kill_worker_of(backend, "ledger")
            # fire-and-forget: commands only, flushed by the block's end —
            # the client never waits on a reply inside this block
            with rt.separate(ref) as led:
                led.record("k", 2)
            # the next block's query must see *both* post-kill records
            with rt.separate(ref) as led:
                assert led.dump() == {"k": [1, 2]}
            assert rt.stats()["shard_failovers"] == 1

    def test_rebalance_after_failover(self):
        """A live reshard still works once a shard has been re-pinned."""
        backend = ProcessBackend(processes=3)
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=3).create(Ledger)
            with group.separate() as g:
                for n, key in enumerate(KEYS):
                    g.on(key).record(key, n)
            _kill_worker_of(backend, "ledgers/shard0")
            group.rebalance(5, keys=KEYS)
            with group.separate() as g:
                dumps = g.gather("dump")
            merged = {}
            for dump in dumps:
                merged.update(dump)
            assert merged == {key: [n] for n, key in enumerate(KEYS)}
            stats = rt.stats()
            assert stats["shard_failovers"] >= 1
            assert stats["ring_epoch"] == 1

    def test_failover_disabled_keeps_fail_stop(self):
        backend = ProcessBackend(processes=1, failover=False)
        rt = QsRuntime("all", backend=backend)
        try:
            ref = rt.new_handler("ledger").create(Ledger)
            with rt.separate(ref) as led:
                led.record("k", 1)
            _kill_worker_of(backend, "ledger")
            with pytest.raises((ScoopError, OSError)):
                with rt.separate(ref) as led:
                    led.record("k", 2)
                    led.dump()
            assert rt.stats()["shard_failovers"] == 0
        finally:
            try:
                rt.shutdown(check_failures=False)
            except (ScoopError, OSError):
                pass  # fail-stop: the dead worker cannot answer the close


class TestHybridWorkerFailover:
    """The same contract with coroutine clients on the hybrid backend: the
    per-queue reader task detects the dead worker, re-pins and replays off
    the loop thread, and every awaiting coroutine's sequence completes."""

    def test_killed_worker_under_coroutine_clients_completes_via_failover(self):
        from repro.backends import HybridBackend

        backend = HybridBackend(processes=2, loops=2)
        with QsRuntime("all", backend=backend) as rt:
            group = rt.sharded("ledgers", shards=2).create(Ledger)

            async def client(i: int) -> None:
                for j in range(20):
                    key = KEYS[(i + j) % len(KEYS)]
                    async with group.separate_async() as g:
                        await g.on(key).record(key, (f"c{i}", j))

            for i in range(3):
                rt.spawn_async_client(client, i, name=f"rec-{i}")
            time.sleep(0.05)  # let the coroutines get going
            _kill_worker_of(backend, "ledgers/shard0")
            rt.join_clients()

            with group.separate() as g:
                dumps = g.gather("dump")
            per_client = {}
            for dump in dumps:
                for log in dump.values():
                    for client_id, j in log:
                        per_client.setdefault(client_id, []).append(j)
            assert {c: sorted(js) for c, js in per_client.items()} == {
                f"c{i}": list(range(20)) for i in range(3)}
            for dump in dumps:
                for log in dump.values():
                    seen = {}
                    for client_id, j in log:
                        assert seen.get(client_id, -1) < j, (
                            f"client {client_id} reordered in {log}")
                        seen[client_id] = j
            assert rt.stats()["shard_failovers"] >= 1

    def test_failover_disabled_poisons_the_coroutine_queue(self):
        from repro.backends import HybridBackend

        backend = HybridBackend(processes=1, loops=1, failover=False)
        rt = QsRuntime("all", backend=backend)
        outcomes = []
        try:
            ref = rt.new_handler("ledger").create(Ledger)

            async def writer() -> None:
                async with rt.separate_async(ref) as led:
                    await led.record("k", 1)
                    assert await led.dump() == {"k": [1]}
                _kill_worker_of(backend, "ledger")
                try:
                    async with rt.separate_async(ref) as led:
                        await led.record("k", 2)
                        await led.dump()
                except (ScoopError, OSError) as exc:
                    outcomes.append(type(exc).__name__)

            rt.spawn_async_client(writer)
            rt.join_clients()
            assert outcomes, "the dead worker must surface as an error"
            assert rt.stats()["shard_failovers"] == 0
        finally:
            try:
                rt.shutdown(check_failures=False)
            except (ScoopError, OSError):
                pass  # fail-stop: the dead worker cannot answer the close
