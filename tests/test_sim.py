"""Tests for the cross-language performance model (Tables 3-5, Figs. 18-20).

The model is checked for *shape* against the paper's published results: who
wins on which workload class, how the compute/communication split behaves,
where scaling saturates.  Absolute values are only checked to be positive
and finite.
"""

import pytest

from repro.experiments import paper_data
from repro.sim.concurrent_model import simulate_concurrent, simulate_concurrent_sweep
from repro.sim.languages import LANGUAGE_ORDER, get_language, language_table
from repro.sim.parallel_model import (
    PARALLEL_TASKS,
    simulate_parallel,
    simulate_parallel_sweep,
    speedup_curve,
)
from repro.util.timing import geometric_mean
from repro.workloads.params import PAPER_CONCURRENT, PAPER_PARALLEL


class TestLanguageProfiles:
    def test_table3_reproduced(self):
        rows = {row["Language"]: row for row in language_table()}
        assert rows["SCOOP/Qs"]["Races"] == "none"
        assert rows["SCOOP/Qs"]["Memory"] == "Non-shared"
        assert rows["SCOOP/Qs"]["Approach"] == "Active Objects"
        assert rows["C++/TBB"]["Races"] == "possible"
        assert rows["C++/TBB"]["Threads"] == "OS"
        assert rows["Erlang"]["Memory"] == "Non-shared"
        assert rows["Haskell"]["Memory"] == "STM"
        assert rows["Go"]["Threads"] == "light"
        assert len(rows) == 5

    def test_aliases(self):
        assert get_language("C++/TBB").name == "cxx"
        assert get_language("SCOOP").name == "qs"
        with pytest.raises(ValueError):
            get_language("rust")

    def test_only_safe_languages_are_race_free(self):
        race_free = {name for name in LANGUAGE_ORDER if get_language(name).races == "none"}
        assert race_free == {"qs", "erlang", "haskell"}


class TestParallelModel:
    def test_every_cell_positive(self):
        for estimate in simulate_parallel_sweep():
            assert estimate.total_seconds > 0
            assert estimate.compute_seconds > 0
            assert estimate.comm_seconds >= 0
            assert estimate.total_seconds == pytest.approx(
                estimate.compute_seconds + estimate.comm_seconds)

    def test_fig18_total_time_ranking_at_32_cores(self):
        """Section 5.2.1: geometric means order cxx < go < haskell < qs < erlang."""
        means = {}
        for lang in LANGUAGE_ORDER:
            times = [simulate_parallel(t, lang, 32).total_seconds for t in PARALLEL_TASKS]
            means[lang] = geometric_mean(times)
        assert means["cxx"] < means["go"] < means["haskell"] < means["qs"] < means["erlang"]

    def test_compute_only_puts_qs_first(self):
        """With communication removed, SCOOP/Qs is competitive (paper: 1st/2nd)."""
        means = {}
        for lang in LANGUAGE_ORDER:
            times = [simulate_parallel(t, lang, 32).compute_seconds for t in PARALLEL_TASKS]
            means[lang] = geometric_mean(times)
        assert means["qs"] <= means["go"]
        assert means["qs"] <= means["haskell"]
        assert means["qs"] <= means["erlang"]
        assert means["qs"] <= means["cxx"] * 1.2

    def test_qs_total_time_plateaus_with_cores(self):
        """The Qs communication is serial, so total time stops improving."""
        t8 = simulate_parallel("thresh", "qs", 8).total_seconds
        t32 = simulate_parallel("thresh", "qs", 32).total_seconds
        assert t32 > 0.5 * t8  # far from linear scaling
        c8 = simulate_parallel("thresh", "qs", 8).compute_seconds
        c32 = simulate_parallel("thresh", "qs", 32).compute_seconds
        assert c32 < 0.5 * c8  # but compute keeps scaling

    def test_erlang_slowest_on_every_parallel_task(self):
        for task in PARALLEL_TASKS:
            times = {lang: simulate_parallel(task, lang, 32).total_seconds for lang in LANGUAGE_ORDER}
            assert max(times, key=times.get) == "erlang"

    def test_speedup_curves_match_documented_anomalies(self):
        # most languages reach >= 5x on chain (paper Section 5.2.2) ...
        for lang in ("cxx", "qs", "haskell"):
            curve = dict(speedup_curve("chain", lang))
            assert curve[32] >= 5.0
        # ... Go's chain degrades past 8 cores
        go_curve = dict(speedup_curve("chain", "go"))
        assert go_curve[32] < go_curve[8]
        # Haskell's randmat saturates / degrades
        hs_curve = dict(speedup_curve("randmat", "haskell"))
        assert hs_curve[32] < 3.0
        # Erlang's winnow cannot speed up past ~2-3x
        erl_curve = dict(speedup_curve("winnow", "erlang"))
        assert erl_curve[32] < 3.0
        # compute-only Qs scales nearly linearly
        qs_comp = dict(speedup_curve("thresh", "qs", compute_only=True))
        assert qs_comp[32] > 15.0

    def test_scaling_with_problem_size(self):
        small = simulate_parallel("randmat", "qs", 8, PAPER_PARALLEL.scaled(nr=1000))
        large = simulate_parallel("randmat", "qs", 8, PAPER_PARALLEL.scaled(nr=2000))
        assert large.total_seconds > small.total_seconds

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_parallel("sorting", "qs", 4)
        with pytest.raises(ValueError):
            simulate_parallel("randmat", "qs", 0)


class TestConcurrentModel:
    def test_every_cell_positive(self):
        for estimate in simulate_concurrent_sweep():
            assert estimate.total_seconds > 0

    def test_table5_winners_and_losers(self):
        """Per-task fastest/slowest language matches Table 5."""
        for task, row in paper_data.TABLE5.items():
            modelled = {lang: simulate_concurrent(task, lang).total_seconds for lang in LANGUAGE_ORDER}
            assert min(modelled, key=modelled.get) == min(row, key=row.get), task
            assert max(modelled, key=modelled.get) == max(row, key=row.get), task

    def test_geometric_mean_ordering_matches_section53(self):
        """cxx < go < qs < erlang < haskell (Section 5.3)."""
        means = {}
        for lang in LANGUAGE_ORDER:
            times = [simulate_concurrent(t, lang).total_seconds for t in paper_data.TABLE5]
            means[lang] = geometric_mean(times)
        assert means["cxx"] < means["go"] < means["qs"] < means["erlang"] < means["haskell"]

    def test_rough_magnitudes_against_paper(self):
        """Modelled values are within a factor 2 of the published numbers."""
        for task, row in paper_data.TABLE5.items():
            for lang, published in row.items():
                modelled = simulate_concurrent(task, lang).total_seconds
                assert modelled == pytest.approx(published, rel=1.0), (task, lang)

    def test_sizes_scale_linearly(self):
        half = PAPER_CONCURRENT.scaled(nt=PAPER_CONCURRENT.nt // 2)
        full = simulate_concurrent("threadring", "qs").total_seconds
        assert simulate_concurrent("threadring", "qs", half).total_seconds == pytest.approx(full / 2)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            simulate_concurrent("barrier", "qs")
