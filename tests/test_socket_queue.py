"""Tests for the socket-backed private queue (Section 7 future work).

Includes the regression suite for the transport bugs the prototype shipped
with: ``dequeue(timeout=0)`` leaking ``BlockingIOError``, a timeout in the
middle of a frame desyncing the length-prefixed stream, and the JSON wire
silently turning argument tuples into lists.
"""

import socket
import struct
import threading
import time

import pytest

from repro.errors import ScoopError
from repro.queues.codec import get_codec
from repro.queues.socket_queue import (
    FrameStream,
    SocketPrivateQueue,
    SocketQueueClosed,
    SocketQueueServer,
    WireRequest,
)
from repro.util.counters import Counters


class Counter:
    """Plain object living on the handler side of the socket."""

    def __init__(self):
        self.value = 0
        self.calls = []

    def increment(self, by=1):
        self.value += by
        self.calls.append(("increment", by))

    def read(self):
        return self.value

    def fail(self):
        raise RuntimeError("deliberate failure")


@pytest.fixture
def channel():
    counters = Counters()
    queue = SocketPrivateQueue(counters)
    target = Counter()
    server = SocketQueueServer(queue, target, counters).start()
    yield queue, target, server, counters
    queue.enqueue_end() if not queue.closed_by_client else None
    server.join(timeout=5)
    queue.close_client()
    queue.close_handler()


class TestProtocol:
    def test_async_calls_applied_in_order(self, channel):
        queue, target, server, _ = channel
        queue.enqueue_call("increment", 1)
        queue.enqueue_call("increment", 2)
        queue.enqueue_call("increment", 3)
        queue.enqueue_end()
        server.join(timeout=5)
        assert target.value == 6
        assert [c[1] for c in target.calls] == [1, 2, 3]
        assert server.executed == 3

    def test_query_returns_result_and_sets_synced(self, channel):
        queue, target, server, _ = channel
        queue.enqueue_call("increment", 5)
        assert queue.synced is False
        assert queue.query("read") == 5
        assert queue.synced is True

    def test_async_call_invalidates_synced_flag(self, channel):
        queue, target, server, _ = channel
        queue.query("read")
        assert queue.synced
        queue.enqueue_call("increment", 1)
        assert not queue.synced

    def test_query_sees_all_previously_logged_calls(self, channel):
        """The ordering guarantee across the socket: every call logged before
        the query is applied before the query executes."""
        queue, target, server, _ = channel
        for i in range(20):
            queue.enqueue_call("increment", 1)
        assert queue.query("read") == 20

    def test_remote_error_is_reported_to_the_client(self, channel):
        queue, target, server, _ = channel
        with pytest.raises(ScoopError) as err:
            queue.query("fail")
        assert "deliberate failure" in str(err.value)

    def test_counters_track_the_wire_traffic(self, channel):
        queue, _, server, counters = channel
        queue.enqueue_call("increment", 1)
        queue.query("read")
        snap = counters.snapshot()
        assert snap["async_calls"] == 1
        assert snap["sync_roundtrips"] == 1
        assert snap["pq_enqueues"] >= 1

    def test_end_terminates_the_server(self, channel):
        queue, _, server, _ = channel
        queue.enqueue_call("increment", 1)
        queue.enqueue_end()
        server.join(timeout=5)
        assert queue.closed_by_client

    def test_dequeue_timeout_returns_none(self):
        queue = SocketPrivateQueue()
        assert queue.dequeue(timeout=0.05) is None
        queue.close_client()
        queue.close_handler()

    def test_wire_request_flags(self):
        assert WireRequest(kind="end").is_end
        assert WireRequest(kind="sync").is_sync
        assert not WireRequest(kind="call").is_end


class TestTimeoutRegressions:
    """The transport bugs of the original prototype, pinned."""

    def test_dequeue_timeout_zero_returns_none_on_empty_queue(self):
        # regression: timeout=0 made the socket non-blocking and the
        # resulting BlockingIOError escaped to the caller
        queue = SocketPrivateQueue()
        try:
            assert queue.dequeue(timeout=0) is None
        finally:
            queue.close_client()
            queue.close_handler()

    def test_dequeue_timeout_zero_still_sees_ready_messages(self):
        queue = SocketPrivateQueue()
        try:
            queue.enqueue_call("increment", 1)
            time.sleep(0.05)  # let the socketpair deliver
            request = queue.dequeue(timeout=0)
            assert request is not None and request.feature == "increment"
            assert queue.dequeue(timeout=0) is None
        finally:
            queue.close_client()
            queue.close_handler()

    def test_partial_frame_survives_timeouts(self):
        # regression: a timeout after a partial header/body read discarded
        # the received bytes and permanently desynced the framed stream
        queue = SocketPrivateQueue()
        try:
            payload = get_codec("json").encode(
                {"kind": "call", "feature": "increment", "args": [7], "kwargs": {}})
            frame = struct.pack(">I", len(payload)) + payload
            # drip the frame in: header byte-by-byte, then body in two cuts
            sock = queue._client_sock
            sock.sendall(frame[:3])
            assert queue.dequeue(timeout=0.02) is None        # mid-header
            sock.sendall(frame[3:10])
            assert queue.dequeue(timeout=0.02) is None        # mid-body
            sock.sendall(frame[10:])
            request = queue.dequeue(timeout=1.0)
            assert request is not None
            assert (request.feature, request.args) == ("increment", (7,))
            # and the stream is still in sync for the next normal message
            queue.enqueue_call("increment", 8)
            request = queue.dequeue(timeout=1.0)
            assert request.args == (8,)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_short_timeouts_interleaved_with_large_payloads(self):
        # a large frame trickled through a throttled sender must assemble
        # across many timed-out dequeues without corruption
        queue = SocketPrivateQueue()
        big = "x" * 300_000

        def slow_send():
            payload = get_codec("json").encode(
                {"kind": "call", "feature": "store", "args": [big], "kwargs": {}})
            frame = struct.pack(">I", len(payload)) + payload
            for i in range(0, len(frame), 20_000):
                queue._client_sock.sendall(frame[i:i + 20_000])
                time.sleep(0.002)

        sender = threading.Thread(target=slow_send, daemon=True)
        sender.start()
        tries = 0
        try:
            while True:
                request = queue.dequeue(timeout=0.005)
                if request is not None:
                    break
                tries += 1
                assert tries < 10_000, "frame never assembled"
            assert request.feature == "store"
            assert request.args == (big,)
            assert tries > 0, "throttling should force at least one timeout"
            sender.join(timeout=5)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_closed_peer_distinguished_from_timeout(self):
        queue = SocketPrivateQueue()
        queue.close_client()
        # dequeue keeps its None-on-closed surface...
        assert queue.dequeue(timeout=0.05) is None
        # ...but the stream layer reports EOF explicitly
        with pytest.raises(SocketQueueClosed):
            queue._handler.recv(timeout=0.05)
        queue.close_handler()


class TestCodecs:
    def test_json_args_normalised_to_tuple(self):
        # regression: WireRequest.args is typed Tuple but decoded as a list
        queue = SocketPrivateQueue()
        try:
            queue.enqueue_call("move", 1, 2, speed=3)
            request = queue.dequeue(timeout=1.0)
            assert isinstance(request.args, tuple)
            assert request.args == (1, 2)
            assert request.kwargs == {"speed": 3}
        finally:
            queue.close_client()
            queue.close_handler()

    def test_pickle_codec_round_trips_tuples_faithfully(self):
        queue = SocketPrivateQueue(codec="pickle")
        try:
            queue.enqueue_call("place", (1, 2), [(3, 4)], corners={"a": (5, 6)})
            request = queue.dequeue(timeout=1.0)
            assert request.args == ((1, 2), [(3, 4)])
            assert isinstance(request.args[0], tuple)
            assert isinstance(request.args[1][0], tuple)
            assert isinstance(request.kwargs["corners"]["a"], tuple)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_pickle_codec_query_round_trip(self):
        class Geometry:
            def diagonal(self, corner):
                return (corner[0] * 2, corner[1] * 2)

        queue = SocketPrivateQueue(codec="pickle")
        server = SocketQueueServer(queue, Geometry()).start()
        try:
            result = queue.query("diagonal", (3, 4))
            assert result == (6, 8)
            assert isinstance(result, tuple)
        finally:
            queue.enqueue_end()
            server.join(timeout=5)
            queue.close_client()
            queue.close_handler()

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown wire codec"):
            SocketPrivateQueue(codec="yaml")


class TestFrameStream:
    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        left, right = FrameStream(a), FrameStream(b)
        try:
            left.send({"kind": "ping", "n": 1})
            assert right.recv(timeout=1.0) == {"kind": "ping", "n": 1}
            right.send({"kind": "pong", "n": 2})
            assert left.recv(timeout=1.0) == {"kind": "pong", "n": 2}
        finally:
            left.close()
            right.close()

    def test_recv_timeout_bounds_the_whole_frame(self):
        a, b = socket.socketpair()
        stream = FrameStream(b)
        try:
            a.sendall(struct.pack(">I", 100))  # header promises 100 bytes
            start = time.monotonic()
            assert stream.recv(timeout=0.1) is None  # body never arrives
            assert time.monotonic() - start < 2.0
        finally:
            a.close()
            stream.close()

    def test_recv_raises_on_eof(self):
        a, b = socket.socketpair()
        stream = FrameStream(b)
        a.close()
        with pytest.raises(SocketQueueClosed):
            stream.recv(timeout=0.5)
        stream.close()

    def test_timed_recv_restores_blocking_mode(self):
        # regression: a timed (or timeout=0) recv left the socket
        # non-blocking, making a later large send on the same socket raise
        # BlockingIOError once the kernel buffer filled
        a, b = socket.socketpair()
        left, right = FrameStream(a), FrameStream(b)
        try:
            assert right.recv(timeout=0) is None
            assert right.sock.gettimeout() is None
            assert right.recv(timeout=0.01) is None
            assert right.sock.gettimeout() is None
            # a reply far larger than the socketpair buffer must not raise
            drained = {}

            def drain():
                drained["frame"] = left.recv(timeout=5.0)

            reader = threading.Thread(target=drain, daemon=True)
            reader.start()
            right.send({"kind": "result", "value": "y" * 2_000_000})
            reader.join(timeout=5)
            assert drained["frame"]["value"] == "y" * 2_000_000
        finally:
            left.close()
            right.close()
