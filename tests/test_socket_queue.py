"""Tests for the socket-backed private queue (Section 7 future work).

Includes the regression suite for the transport bugs the prototype shipped
with: ``dequeue(timeout=0)`` leaking ``BlockingIOError``, a timeout in the
middle of a frame desyncing the length-prefixed stream, and the JSON wire
silently turning argument tuples into lists.
"""

import socket
import struct
import threading
import time

import pytest

from repro.errors import ScoopError
from repro.queues.codec import get_codec
from repro.queues.socket_queue import (
    COALESCE_MAX_FRAMES,
    WIRE_EOF,
    FrameStream,
    SocketPrivateQueue,
    SocketQueueClosed,
    SocketQueueServer,
    WireRequest,
)
from repro.util.counters import Counters


class Counter:
    """Plain object living on the handler side of the socket."""

    def __init__(self):
        self.value = 0
        self.calls = []

    def increment(self, by=1):
        self.value += by
        self.calls.append(("increment", by))

    def read(self):
        return self.value

    def fail(self):
        raise RuntimeError("deliberate failure")


@pytest.fixture
def channel():
    counters = Counters()
    queue = SocketPrivateQueue(counters)
    target = Counter()
    server = SocketQueueServer(queue, target, counters).start()
    yield queue, target, server, counters
    queue.enqueue_end() if not queue.closed_by_client else None
    server.join(timeout=5)
    queue.close_client()
    queue.close_handler()


class TestProtocol:
    def test_async_calls_applied_in_order(self, channel):
        queue, target, server, _ = channel
        queue.enqueue_call("increment", 1)
        queue.enqueue_call("increment", 2)
        queue.enqueue_call("increment", 3)
        queue.enqueue_end()
        server.join(timeout=5)
        assert target.value == 6
        assert [c[1] for c in target.calls] == [1, 2, 3]
        assert server.executed == 3

    def test_query_returns_result_and_sets_synced(self, channel):
        queue, target, server, _ = channel
        queue.enqueue_call("increment", 5)
        assert queue.synced is False
        assert queue.query("read") == 5
        assert queue.synced is True

    def test_async_call_invalidates_synced_flag(self, channel):
        queue, target, server, _ = channel
        queue.query("read")
        assert queue.synced
        queue.enqueue_call("increment", 1)
        assert not queue.synced

    def test_query_sees_all_previously_logged_calls(self, channel):
        """The ordering guarantee across the socket: every call logged before
        the query is applied before the query executes."""
        queue, target, server, _ = channel
        for i in range(20):
            queue.enqueue_call("increment", 1)
        assert queue.query("read") == 20

    def test_remote_error_is_reported_to_the_client(self, channel):
        queue, target, server, _ = channel
        with pytest.raises(ScoopError) as err:
            queue.query("fail")
        assert "deliberate failure" in str(err.value)

    def test_counters_track_the_wire_traffic(self, channel):
        queue, _, server, counters = channel
        queue.enqueue_call("increment", 1)
        queue.query("read")
        snap = counters.snapshot()
        assert snap["async_calls"] == 1
        assert snap["sync_roundtrips"] == 1
        assert snap["pq_enqueues"] >= 1

    def test_end_terminates_the_server(self, channel):
        queue, _, server, _ = channel
        queue.enqueue_call("increment", 1)
        queue.enqueue_end()
        server.join(timeout=5)
        assert queue.closed_by_client

    def test_dequeue_timeout_returns_none(self):
        queue = SocketPrivateQueue()
        assert queue.dequeue(timeout=0.05) is None
        queue.close_client()
        queue.close_handler()

    def test_wire_request_flags(self):
        assert WireRequest(kind="end").is_end
        assert WireRequest(kind="sync").is_sync
        assert not WireRequest(kind="call").is_end


class TestTimeoutRegressions:
    """The transport bugs of the original prototype, pinned."""

    def test_dequeue_timeout_zero_returns_none_on_empty_queue(self):
        # regression: timeout=0 made the socket non-blocking and the
        # resulting BlockingIOError escaped to the caller
        queue = SocketPrivateQueue()
        try:
            assert queue.dequeue(timeout=0) is None
        finally:
            queue.close_client()
            queue.close_handler()

    def test_dequeue_timeout_zero_still_sees_ready_messages(self):
        queue = SocketPrivateQueue()
        try:
            queue.enqueue_call("increment", 1)
            time.sleep(0.05)  # let the socketpair deliver
            request = queue.dequeue(timeout=0)
            assert request is not None and request.feature == "increment"
            assert queue.dequeue(timeout=0) is None
        finally:
            queue.close_client()
            queue.close_handler()

    def test_partial_frame_survives_timeouts(self):
        # regression: a timeout after a partial header/body read discarded
        # the received bytes and permanently desynced the framed stream
        queue = SocketPrivateQueue()
        try:
            payload = get_codec("json").encode(
                {"kind": "call", "feature": "increment", "args": [7], "kwargs": {}})
            frame = struct.pack(">I", len(payload)) + payload
            # drip the frame in: header byte-by-byte, then body in two cuts
            sock = queue._client_sock
            sock.sendall(frame[:3])
            assert queue.dequeue(timeout=0.02) is None        # mid-header
            sock.sendall(frame[3:10])
            assert queue.dequeue(timeout=0.02) is None        # mid-body
            sock.sendall(frame[10:])
            request = queue.dequeue(timeout=1.0)
            assert request is not None
            assert (request.feature, request.args) == ("increment", (7,))
            # and the stream is still in sync for the next normal message
            queue.enqueue_call("increment", 8)
            request = queue.dequeue(timeout=1.0)
            assert request.args == (8,)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_short_timeouts_interleaved_with_large_payloads(self):
        # a large frame trickled through a throttled sender must assemble
        # across many timed-out dequeues without corruption
        queue = SocketPrivateQueue()
        big = "x" * 300_000

        def slow_send():
            payload = get_codec("json").encode(
                {"kind": "call", "feature": "store", "args": [big], "kwargs": {}})
            frame = struct.pack(">I", len(payload)) + payload
            for i in range(0, len(frame), 20_000):
                queue._client_sock.sendall(frame[i:i + 20_000])
                time.sleep(0.002)

        sender = threading.Thread(target=slow_send, daemon=True)
        sender.start()
        tries = 0
        try:
            while True:
                request = queue.dequeue(timeout=0.005)
                if request is not None:
                    break
                tries += 1
                assert tries < 10_000, "frame never assembled"
            assert request.feature == "store"
            assert request.args == (big,)
            assert tries > 0, "throttling should force at least one timeout"
            sender.join(timeout=5)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_closed_peer_distinguished_from_timeout(self):
        # regression: dequeue returned None for BOTH a timeout and a closed
        # peer, so pollers could not tell a quiet interval from end-of-stream
        queue = SocketPrivateQueue()
        assert queue.dequeue(timeout=0.05) is None          # timeout -> None
        queue.close_client()
        assert queue.dequeue(timeout=0.05) is WIRE_EOF      # EOF -> sentinel
        # the stream layer reports EOF explicitly too
        with pytest.raises(SocketQueueClosed):
            queue._handler.recv(timeout=0.05)
        queue.close_handler()

    def test_server_keeps_draining_across_idle_gaps(self):
        # regression: SocketQueueServer._drain treated a quiet idle_timeout
        # as end-of-stream (dequeue's None ambiguity) and silently stopped
        # draining — calls enqueued after the pause were never executed
        counters = Counters()
        queue = SocketPrivateQueue(counters)
        target = Counter()
        # a short idle_timeout stands in for the production 5 s window
        server = SocketQueueServer(queue, target, counters,
                                   idle_timeout=0.1).start()
        try:
            queue.enqueue_call("increment", 1)
            time.sleep(0.4)  # several idle polls elapse mid-block
            queue.enqueue_call("increment", 2)
            assert queue.query("read") == 3
            queue.enqueue_end()
            server.join(timeout=5)
            assert target.value == 3
            assert server.executed == 2
        finally:
            queue.close_client()
            queue.close_handler()

    def test_server_stops_on_client_eof_without_end(self):
        # WIRE_EOF (a vanished client) still terminates the drain promptly
        queue = SocketPrivateQueue()
        server = SocketQueueServer(queue, Counter(), idle_timeout=0.1).start()
        queue.close_client()
        server.join(timeout=5)
        queue.close_handler()

    def test_concurrent_sends_never_inherit_a_recv_deadline(self):
        # regression: FrameStream.recv's deadline path set settimeout() on
        # the shared socket, so a concurrent sendall from another thread
        # could spuriously raise socket.timeout once the kernel buffer
        # filled inside the deadline window
        a, b = socket.socketpair()
        left, right = FrameStream(a), FrameStream(b)
        big = "z" * 500_000  # several times a socketpair's kernel buffer
        errors = []
        sent = threading.Event()

        def sender():
            try:
                for _ in range(4):
                    left.send({"kind": "result", "value": big})
            except Exception as exc:  # noqa: BLE001 - the regression itself
                errors.append(exc)
            finally:
                sent.set()

        def receiver():
            # timed recvs poll left's socket while its sender blocks in
            # sendall on the very same socket
            got = 0
            while got < 4:
                frame = right.recv(timeout=0.01)
                if frame is not None:
                    got += 1
            sent.wait(timeout=5)

        try:
            send_thread = threading.Thread(target=sender, daemon=True)
            recv_thread = threading.Thread(target=receiver, daemon=True)
            # left ALSO polls for replies with a deadline while sending:
            # this is the exact interleaving that used to poison sendall
            send_thread.start()
            for _ in range(50):
                assert left.recv(timeout=0.005) is None
            recv_thread.start()
            send_thread.join(timeout=10)
            recv_thread.join(timeout=10)
            assert not send_thread.is_alive(), "sender wedged"
            assert errors == [], f"send raised under a concurrent timed recv: {errors}"
        finally:
            left.close()
            right.close()


class TestCodecs:
    def test_json_args_normalised_to_tuple(self):
        # regression: WireRequest.args is typed Tuple but decoded as a list
        queue = SocketPrivateQueue()
        try:
            queue.enqueue_call("move", 1, 2, speed=3)
            request = queue.dequeue(timeout=1.0)
            assert isinstance(request.args, tuple)
            assert request.args == (1, 2)
            assert request.kwargs == {"speed": 3}
        finally:
            queue.close_client()
            queue.close_handler()

    def test_pickle_codec_round_trips_tuples_faithfully(self):
        queue = SocketPrivateQueue(codec="pickle")
        try:
            queue.enqueue_call("place", (1, 2), [(3, 4)], corners={"a": (5, 6)})
            request = queue.dequeue(timeout=1.0)
            assert request.args == ((1, 2), [(3, 4)])
            assert isinstance(request.args[0], tuple)
            assert isinstance(request.args[1][0], tuple)
            assert isinstance(request.kwargs["corners"]["a"], tuple)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_pickle_codec_query_round_trip(self):
        class Geometry:
            def diagonal(self, corner):
                return (corner[0] * 2, corner[1] * 2)

        queue = SocketPrivateQueue(codec="pickle")
        server = SocketQueueServer(queue, Geometry()).start()
        try:
            result = queue.query("diagonal", (3, 4))
            assert result == (6, 8)
            assert isinstance(result, tuple)
        finally:
            queue.enqueue_end()
            server.join(timeout=5)
            queue.close_client()
            queue.close_handler()

    def test_unknown_codec_rejected(self):
        with pytest.raises(ValueError, match="unknown wire codec"):
            SocketPrivateQueue(codec="yaml")

    def test_bin_codec_round_trips_tuples_faithfully(self):
        queue = SocketPrivateQueue(codec="bin")
        try:
            queue.enqueue_call("place", (1, 2), [(3, 4)], corners={"a": (5, 6)})
            request = queue.dequeue(timeout=1.0)
            assert request.args == ((1, 2), [(3, 4)])
            assert isinstance(request.args[0], tuple)
            assert isinstance(request.args[1][0], tuple)
            assert isinstance(request.kwargs["corners"]["a"], tuple)
        finally:
            queue.close_client()
            queue.close_handler()

    def test_bin_codec_query_round_trip(self):
        class Geometry:
            def diagonal(self, corner):
                return (corner[0] * 2, corner[1] * 2)

        queue = SocketPrivateQueue(codec="bin")
        server = SocketQueueServer(queue, Geometry()).start()
        try:
            result = queue.query("diagonal", (3, 4))
            assert result == (6, 8)
            assert isinstance(result, tuple)
        finally:
            queue.enqueue_end()
            server.join(timeout=5)
            queue.close_client()
            queue.close_handler()

    def test_json_codec_refuses_nested_tuples_instead_of_mutating(self):
        # regression: JSON silently decoded nested tuples as lists; now the
        # mismatch is a pointed error naming the codecs that can carry them
        queue = SocketPrivateQueue(codec="json")
        try:
            with pytest.raises(ScoopError, match="pickle.*bin|bin.*pickle"):
                queue.enqueue_call("place", [(1, 2)])
        finally:
            queue.close_client()
            queue.close_handler()


class TestCoalescing:
    """feed/flush (send side) and recv_many (receive side) batching."""

    def _pair(self, codec="json"):
        a, b = socket.socketpair()
        return FrameStream(a, codec), FrameStream(b, codec)

    def test_feed_buffers_until_flush(self):
        left, right = self._pair()
        try:
            for n in range(3):
                assert left.feed({"kind": "call", "n": n}) == 0
            assert left.pending_frames == 3
            # nothing on the wire yet
            assert right.recv(timeout=0.05) is None
            assert left.flush() == 3
            assert left.pending_frames == 0
            frames = right.recv_many(timeout=1.0)
            assert [f["n"] for f in frames] == [0, 1, 2]
        finally:
            left.close()
            right.close()

    def test_feed_auto_flushes_at_the_batch_limit(self):
        left, right = self._pair()
        try:
            flushed = []
            for n in range(COALESCE_MAX_FRAMES + 5):
                flushed.append(left.feed({"kind": "call", "n": n}))
            assert flushed.count(COALESCE_MAX_FRAMES) == 1
            assert left.pending_frames == 5
            assert left.flush() == 5
            got = []
            while len(got) < COALESCE_MAX_FRAMES + 5:
                got.extend(right.recv_many(timeout=1.0))
            assert [f["n"] for f in got] == list(range(COALESCE_MAX_FRAMES + 5))
        finally:
            left.close()
            right.close()

    def test_send_flushes_pending_frames_first(self):
        # feed/send interleavings must preserve enqueue order
        left, right = self._pair()
        try:
            left.feed({"kind": "call", "n": 0})
            left.send({"kind": "sync", "n": 1})
            frames = right.recv_many(timeout=1.0)
            assert [f["n"] for f in frames] == [0, 1]
        finally:
            left.close()
            right.close()

    def test_recv_many_respects_max_frames(self):
        left, right = self._pair()
        try:
            for n in range(6):
                left.feed({"kind": "call", "n": n})
            left.flush()
            first = right.recv_many(timeout=1.0, max_frames=4)
            assert [f["n"] for f in first] == [0, 1, 2, 3]
            rest = right.recv_many(timeout=1.0)
            assert [f["n"] for f in rest] == [4, 5]
        finally:
            left.close()
            right.close()

    def test_flush_on_empty_buffer_is_a_no_op(self):
        left, right = self._pair()
        try:
            assert left.flush() == 0
        finally:
            left.close()
            right.close()

    def test_recv_many_timeout_returns_empty_list(self):
        left, right = self._pair()
        try:
            assert right.recv_many(timeout=0.02) == []
        finally:
            left.close()
            right.close()

    def test_peer_closed_false_on_a_live_connection_even_with_pending_data(self):
        left, right = self._pair()
        try:
            assert not left.peer_closed()
            right.send({"kind": "reply"})  # queued bytes are not EOF
            time.sleep(0.05)
            assert not left.peer_closed()
            assert left.recv(timeout=1.0) == {"kind": "reply"}
        finally:
            left.close()
            right.close()

    def test_peer_closed_surfaces_a_dead_peer_despite_a_successful_flush(self):
        # Over TCP the first sendall after the peer dies *succeeds* — the
        # kernel buffers the burst before the RST lands — so a
        # fire-and-forget sender would never see an error.  The queued FIN
        # must still be visible through peer_closed().
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        client = socket.create_connection(listener.getsockname())
        server, _ = listener.accept()
        stream = FrameStream(client)
        try:
            assert not stream.peer_closed()
            server.close()  # the "worker" dies with the connection open
            stream.feed({"kind": "call", "n": 0})
            stream.feed({"kind": "end"})
            try:
                stream.flush()  # typically succeeds into the kernel buffer
            except (OSError, SocketQueueClosed):
                pass  # the RST may also land first; either way:
            deadline = time.monotonic() + 2.0
            while not stream.peer_closed():
                assert time.monotonic() < deadline, "EOF never surfaced"
                time.sleep(0.01)
        finally:
            stream.close()
            listener.close()


class TestFrameStream:
    def test_send_recv_over_socketpair(self):
        a, b = socket.socketpair()
        left, right = FrameStream(a), FrameStream(b)
        try:
            left.send({"kind": "ping", "n": 1})
            assert right.recv(timeout=1.0) == {"kind": "ping", "n": 1}
            right.send({"kind": "pong", "n": 2})
            assert left.recv(timeout=1.0) == {"kind": "pong", "n": 2}
        finally:
            left.close()
            right.close()

    def test_recv_timeout_bounds_the_whole_frame(self):
        a, b = socket.socketpair()
        stream = FrameStream(b)
        try:
            a.sendall(struct.pack(">I", 100))  # header promises 100 bytes
            start = time.monotonic()
            assert stream.recv(timeout=0.1) is None  # body never arrives
            assert time.monotonic() - start < 2.0
        finally:
            a.close()
            stream.close()

    def test_recv_raises_on_eof(self):
        a, b = socket.socketpair()
        stream = FrameStream(b)
        a.close()
        with pytest.raises(SocketQueueClosed):
            stream.recv(timeout=0.5)
        stream.close()

    def test_timed_recv_restores_blocking_mode(self):
        # regression: a timed (or timeout=0) recv left the socket
        # non-blocking, making a later large send on the same socket raise
        # BlockingIOError once the kernel buffer filled
        a, b = socket.socketpair()
        left, right = FrameStream(a), FrameStream(b)
        try:
            assert right.recv(timeout=0) is None
            assert right.sock.gettimeout() is None
            assert right.recv(timeout=0.01) is None
            assert right.sock.gettimeout() is None
            # a reply far larger than the socketpair buffer must not raise
            drained = {}

            def drain():
                drained["frame"] = left.recv(timeout=5.0)

            reader = threading.Thread(target=drain, daemon=True)
            reader.start()
            right.send({"kind": "result", "value": "y" * 2_000_000})
            reader.join(timeout=5)
            assert drained["frame"]["value"] == "y" * 2_000_000
        finally:
            left.close()
            right.close()
