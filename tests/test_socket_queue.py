"""Tests for the socket-backed private queue prototype (Section 7 future work)."""

import pytest

from repro.errors import ScoopError
from repro.queues.socket_queue import SocketPrivateQueue, SocketQueueServer, WireRequest
from repro.util.counters import Counters


class Counter:
    """Plain object living on the handler side of the socket."""

    def __init__(self):
        self.value = 0
        self.calls = []

    def increment(self, by=1):
        self.value += by
        self.calls.append(("increment", by))

    def read(self):
        return self.value

    def fail(self):
        raise RuntimeError("deliberate failure")


@pytest.fixture
def channel():
    counters = Counters()
    queue = SocketPrivateQueue(counters)
    target = Counter()
    server = SocketQueueServer(queue, target, counters).start()
    yield queue, target, server, counters
    queue.enqueue_end() if not queue.closed_by_client else None
    server.join(timeout=5)
    queue.close_client()
    queue.close_handler()


class TestProtocol:
    def test_async_calls_applied_in_order(self, channel):
        queue, target, server, _ = channel
        queue.enqueue_call("increment", 1)
        queue.enqueue_call("increment", 2)
        queue.enqueue_call("increment", 3)
        queue.enqueue_end()
        server.join(timeout=5)
        assert target.value == 6
        assert [c[1] for c in target.calls] == [1, 2, 3]
        assert server.executed == 3

    def test_query_returns_result_and_sets_synced(self, channel):
        queue, target, server, _ = channel
        queue.enqueue_call("increment", 5)
        assert queue.synced is False
        assert queue.query("read") == 5
        assert queue.synced is True

    def test_async_call_invalidates_synced_flag(self, channel):
        queue, target, server, _ = channel
        queue.query("read")
        assert queue.synced
        queue.enqueue_call("increment", 1)
        assert not queue.synced

    def test_query_sees_all_previously_logged_calls(self, channel):
        """The ordering guarantee across the socket: every call logged before
        the query is applied before the query executes."""
        queue, target, server, _ = channel
        for i in range(20):
            queue.enqueue_call("increment", 1)
        assert queue.query("read") == 20

    def test_remote_error_is_reported_to_the_client(self, channel):
        queue, target, server, _ = channel
        with pytest.raises(ScoopError) as err:
            queue.query("fail")
        assert "deliberate failure" in str(err.value)

    def test_counters_track_the_wire_traffic(self, channel):
        queue, _, server, counters = channel
        queue.enqueue_call("increment", 1)
        queue.query("read")
        snap = counters.snapshot()
        assert snap["async_calls"] == 1
        assert snap["sync_roundtrips"] == 1
        assert snap["pq_enqueues"] >= 1

    def test_end_terminates_the_server(self, channel):
        queue, _, server, _ = channel
        queue.enqueue_call("increment", 1)
        queue.enqueue_end()
        server.join(timeout=5)
        assert queue.closed_by_client

    def test_dequeue_timeout_returns_none(self):
        queue = SocketPrivateQueue()
        assert queue.dequeue(timeout=0.05) is None
        queue.close_client()
        queue.close_handler()

    def test_wire_request_flags(self):
        assert WireRequest(kind="end").is_end
        assert WireRequest(kind="sync").is_sync
        assert not WireRequest(kind="call").is_end
