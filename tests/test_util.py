"""Tests for counters, timing helpers and the deterministic RNG."""

import threading

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.util.counters import CounterSnapshot, Counters
from repro.util.rng import lcg_matrix, lcg_next, lcg_stream
from repro.util.timing import Stopwatch, geometric_mean, normalize_to_fastest, speedup_series


class TestCounters:
    def test_bump_and_get(self):
        counters = Counters()
        counters.bump("queries")
        counters.add("queries", 4)
        assert counters.get("queries") == 5

    def test_negative_amount_rejected(self):
        with pytest.raises(ValueError):
            Counters().add("queries", -1)

    def test_snapshot_is_immutable_copy(self):
        counters = Counters()
        counters.bump("async_calls")
        snap = counters.snapshot()
        counters.bump("async_calls")
        assert snap["async_calls"] == 1
        assert counters.get("async_calls") == 2

    def test_snapshot_diff(self):
        counters = Counters()
        counters.add("pq_enqueues", 3)
        before = counters.snapshot()
        counters.add("pq_enqueues", 4)
        delta = counters.snapshot().diff(before)
        assert delta["pq_enqueues"] == 4

    def test_attribute_access_on_snapshot(self):
        snap = CounterSnapshot({"sync_roundtrips": 7})
        assert snap.sync_roundtrips == 7
        assert snap.async_calls == 0
        with pytest.raises(AttributeError):
            snap.not_a_counter

    def test_communication_ops_definition(self):
        snap = CounterSnapshot({"async_calls": 2, "sync_roundtrips": 3, "qoq_enqueues": 4,
                                "lock_acquisitions": 1, "syncs_elided": 99})
        assert snap.communication_ops == 10

    def test_merge_accumulates(self):
        a, b = Counters(), Counters()
        a.add("queries", 2)
        b.add("queries", 5)
        a.merge(b)
        assert a.get("queries") == 7

    # -- the edge cases behind cross-process/shard counter aggregation -------
    def test_merge_with_unknown_keys_creates_them(self):
        # worker snapshots may carry counters the parent never bumped (or,
        # after an upgrade, names a newer worker knows and we do not);
        # merging must create them, not drop or crash on them
        a, b = Counters(), Counters()
        b.add("queries", 2)
        b.add("exotic_worker_metric", 9)
        a.merge(b)
        assert a.get("queries") == 2
        assert a.get("exotic_worker_metric") == 9
        a.merge(CounterSnapshot({"exotic_worker_metric": 1, "another_new_one": 4}))
        assert a.get("exotic_worker_metric") == 10
        assert a.get("another_new_one") == 4

    def test_merge_accepts_snapshots_and_counters_identically(self):
        a, b = Counters(), Counters()
        b.add("shard_routes", 6)
        a.merge(b)
        a.merge(b.snapshot())
        assert a.get("shard_routes") == 12

    def test_diff_on_disjoint_snapshots_keeps_both_key_sets(self):
        later = CounterSnapshot({"async_calls": 3, "only_later": 5})
        earlier = CounterSnapshot({"only_earlier": 2})
        delta = later.diff(earlier)
        assert delta["async_calls"] == 3
        assert delta["only_later"] == 5
        assert delta["only_earlier"] == -2  # went away relative to earlier
        assert set(delta.values) == {"async_calls", "only_later", "only_earlier"}

    def test_diff_of_identical_snapshots_is_all_zero(self):
        snap = CounterSnapshot({"queries": 4, "shard_gathers": 1})
        delta = snap.diff(snap)
        assert all(value == 0 for value in delta.values.values())

    def test_communication_ops_is_stable_under_merge(self):
        # aggregating worker/shard counters must preserve the Fig. 16 metric:
        # communication_ops(merged) == sum of the parts' communication_ops
        parts = []
        for i in range(3):
            part = Counters()
            part.add("async_calls", i + 1)
            part.add("sync_roundtrips", 2 * i)
            part.add("qoq_enqueues", 5)
            part.add("lock_acquisitions", i)
            part.add("syncs_elided", 7)  # deliberately NOT a communication op
            parts.append(part)
        merged = Counters()
        for part in parts:
            merged.merge(part)
        assert merged.snapshot().communication_ops == sum(
            part.snapshot().communication_ops for part in parts)

    def test_communication_ops_ignores_unknown_keys(self):
        snap = CounterSnapshot({"async_calls": 1, "exotic_worker_metric": 50})
        assert snap.communication_ops == 1

    def test_thread_safety_of_increments(self):
        counters = Counters()

        def work():
            for _ in range(1000):
                counters.bump("calls_executed")

        threads = [threading.Thread(target=work) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert counters.get("calls_executed") == 8000

    def test_reset(self):
        counters = Counters()
        counters.bump("handoffs")
        counters.reset()
        assert counters.get("handoffs") == 0


class TestTiming:
    def test_geometric_mean_simple(self):
        assert geometric_mean([1, 100]) == pytest.approx(10.0)
        assert geometric_mean([3, 3, 3]) == pytest.approx(3.0)

    def test_geometric_mean_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ValueError):
            geometric_mean([])

    def test_normalize_to_fastest(self):
        assert normalize_to_fastest([2.0, 4.0, 1.0]) == [2.0, 4.0, 1.0]

    def test_speedup_series_requires_single_thread_base(self):
        assert speedup_series([(1, 10.0), (2, 5.0)]) == [(1, 1.0), (2, 2.0)]
        with pytest.raises(ValueError):
            speedup_series([(2, 5.0), (4, 2.5)])

    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch:
            pass
        first = watch.elapsed
        with watch:
            pass
        assert watch.elapsed >= first

    def test_stopwatch_misuse(self):
        watch = Stopwatch()
        with pytest.raises(RuntimeError):
            watch.stop()
        watch.start()
        with pytest.raises(RuntimeError):
            watch.start()

    @given(st.lists(st.floats(min_value=0.1, max_value=1e6), min_size=1, max_size=20))
    def test_geometric_mean_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) <= mean * (1 + 1e-9)
        assert mean <= max(values) * (1 + 1e-9)


class TestRng:
    def test_lcg_next_deterministic(self):
        assert lcg_next(1) == lcg_next(1)
        assert lcg_next(1) != lcg_next(2)

    def test_lcg_stream_range_and_determinism(self):
        a = lcg_stream(seed=7, count=100, limit=50)
        b = lcg_stream(seed=7, count=100, limit=50)
        np.testing.assert_array_equal(a, b)
        assert a.min() >= 0 and a.max() < 50

    def test_lcg_stream_validation(self):
        with pytest.raises(ValueError):
            lcg_stream(1, -1)
        with pytest.raises(ValueError):
            lcg_stream(1, 10, limit=0)

    def test_lcg_matrix_rows_are_row_seeded(self):
        matrix = lcg_matrix(seed=3, nrows=4, ncols=8)
        np.testing.assert_array_equal(matrix[2], lcg_stream(5, 8))

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_lcg_stays_in_modulus(self, state):
        assert 0 <= lcg_next(state) < 2**31
