"""Tests for whole-program call graphs and readonly/readnone inference."""

import pytest

from repro.compiler.attributes import (
    AttributeInference,
    Effect,
    apply_attributes,
    infer_and_apply,
)
from repro.compiler.builder import FunctionBuilder
from repro.compiler.program import Program
from repro.compiler.sync_elision import SyncElisionPass
from repro.errors import CompilerError


def fn_pure(name="pure"):
    b = FunctionBuilder(name, entry="entry")
    b.block("entry").local("compute locally").ret()
    return b.build()


def fn_reader(name="reader"):
    b = FunctionBuilder(name, entry="entry")
    b.block("entry").sync("h").local("read", handler="h").ret()
    return b.build()


def fn_writer(name="writer"):
    b = FunctionBuilder(name, entry="entry")
    b.block("entry").async_call("h", note="push").ret()
    return b.build()


def fn_calling(name, callee, **flags):
    b = FunctionBuilder(name, entry="entry")
    b.block("entry").call(callee, **flags).ret()
    return b.build()


class TestProgramStructure:
    def test_duplicate_function_rejected(self):
        program = Program.from_functions([fn_pure()])
        with pytest.raises(CompilerError):
            program.add(fn_pure())

    def test_call_graph_and_external_callees(self):
        program = Program.from_functions([fn_calling("main", "helper"), fn_pure("helper")])
        graph = program.call_graph()
        assert graph["main"] == {"helper"}
        assert graph["helper"] == set()
        assert program.callers_of("helper") == {"main"}
        assert program.external_callees() == set()

        program2 = Program.from_functions([fn_calling("main", "libc_memcpy")])
        assert program2.external_callees() == {"libc_memcpy"}

    def test_bottom_up_order_visits_callees_first(self):
        program = Program.from_functions(
            [fn_calling("a", "b"), fn_calling("b", "c"), fn_pure("c")]
        )
        order = program.bottom_up_order()
        assert order.index("c") < order.index("b") < order.index("a")

    def test_bottom_up_order_handles_recursion(self):
        program = Program.from_functions([fn_calling("even", "odd"), fn_calling("odd", "even")])
        order = program.bottom_up_order()
        assert sorted(order) == ["even", "odd"]

    def test_replace_unknown_function_rejected(self):
        program = Program.from_functions([fn_pure()])
        with pytest.raises(CompilerError):
            program.replace(fn_pure("other"))

    def test_summary_counts_instructions(self):
        program = Program.from_functions([fn_reader(), fn_writer()])
        summary = program.summary()
        assert summary["reader"]["syncs"] == 1
        assert summary["writer"]["async_calls"] == 1


class TestEffectLattice:
    def test_join_takes_the_stronger_effect(self):
        assert Effect.READNONE.join(Effect.READONLY) is Effect.READONLY
        assert Effect.READONLY.join(Effect.CLOBBERS) is Effect.CLOBBERS
        assert Effect.READNONE.join(Effect.READNONE) is Effect.READNONE

    def test_flag_names(self):
        assert Effect.READNONE.flag_name == "readnone"
        assert Effect.READONLY.flag_name == "readonly"
        assert Effect.CLOBBERS.flag_name is None


class TestInference:
    def test_leaf_effects(self):
        program = Program.from_functions([fn_pure(), fn_reader(), fn_writer()])
        summary = AttributeInference().run(program)
        assert summary.effects["pure"] is Effect.READNONE
        assert summary.effects["reader"] is Effect.READONLY
        assert summary.effects["writer"] is Effect.CLOBBERS

    def test_effects_propagate_through_calls(self):
        program = Program.from_functions(
            [
                fn_pure("leaf"),
                fn_calling("wraps_pure", "leaf"),
                fn_reader("reads"),
                fn_calling("wraps_reader", "reads"),
                fn_writer("writes"),
                fn_calling("wraps_writer", "writes"),
            ]
        )
        summary = AttributeInference().run(program)
        assert summary.effects["wraps_pure"] is Effect.READNONE
        assert summary.effects["wraps_reader"] is Effect.READONLY
        assert summary.effects["wraps_writer"] is Effect.CLOBBERS

    def test_external_calls_assumed_clobbering_by_default(self):
        program = Program.from_functions([fn_calling("main", "mystery")])
        summary = AttributeInference().run(program)
        assert summary.effects["main"] is Effect.CLOBBERS
        assert summary.effect_of("mystery") is Effect.CLOBBERS

    def test_external_assumption_can_be_relaxed(self):
        program = Program.from_functions([fn_calling("main", "sqrt")])
        summary = AttributeInference(assume_external=Effect.READNONE).run(program)
        assert summary.effects["main"] is Effect.READNONE

    def test_explicit_flags_on_call_sites_trusted(self):
        program = Program.from_functions([fn_calling("main", "mystery", readnone=True)])
        summary = AttributeInference().run(program)
        assert summary.effects["main"] is Effect.READNONE

    def test_mutual_recursion_converges(self):
        even = FunctionBuilder("even", entry="e")
        even.block("e").local().call("odd").ret()
        odd = FunctionBuilder("odd", entry="e")
        odd.block("e").sync("h").call("even").ret()
        program = Program.from_functions([even.build(), odd.build()])
        summary = AttributeInference().run(program)
        # nothing clobbers, but odd reads handler state -> both are READONLY
        assert summary.effects["even"] is Effect.READONLY
        assert summary.effects["odd"] is Effect.READONLY

    def test_summary_partitions(self):
        program = Program.from_functions([fn_pure(), fn_reader(), fn_writer()])
        summary = AttributeInference().run(program)
        assert summary.readnone_functions() == ["pure"]
        assert summary.readonly_functions() == ["reader"]
        assert summary.clobbering_functions() == ["writer"]


class TestApplication:
    def test_apply_sets_flags_on_call_sites(self):
        program = Program.from_functions([fn_calling("main", "leaf"), fn_pure("leaf")])
        summary = AttributeInference().run(program)
        changed = apply_attributes(program, summary)
        assert changed == 1
        (site,) = program.call_sites("main")
        assert site.instr.readnone and not site.instr.readonly

    def test_attributes_unlock_sync_coalescing_across_a_call(self):
        """The motivating pipeline: a helper call between two queries clears
        the sync-set unless inference marks the helper readnone."""
        b = FunctionBuilder("client", entry="entry")
        b.block("entry").sync("h").local("read 1", handler="h").call("helper").sync("h").local(
            "read 2", handler="h"
        ).ret()
        client = b.build()
        program = Program.from_functions([client, fn_pure("helper")])

        # without attribute inference the second sync must stay
        _, before = SyncElisionPass().run(program.function("client"))
        assert before.removed_syncs == 0

        infer_and_apply(program)
        _, after = SyncElisionPass().run(program.function("client"))
        assert after.removed_syncs == 1

    def test_clobbering_helper_still_blocks_coalescing(self):
        b = FunctionBuilder("client", entry="entry")
        b.block("entry").sync("h").call("helper").sync("h").ret()
        program = Program.from_functions([b.build(), fn_writer("helper")])
        infer_and_apply(program)
        _, report = SyncElisionPass().run(program.function("client"))
        assert report.removed_syncs == 0

    def test_apply_never_weakens_existing_flags(self):
        fn = fn_calling("main", "mystery", readonly=True)
        program = Program.from_functions([fn])
        summary = AttributeInference().run(program)
        changed = apply_attributes(program, summary)
        assert changed == 0
        (site,) = program.call_sites("main")
        assert site.instr.readonly
