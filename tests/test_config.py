"""Tests for the optimization-level configuration."""

import pytest

from repro.config import LEVEL_ORDER, OptimizationLevel, QsConfig


class TestOptimizationLevel:
    def test_parse_strings(self):
        assert OptimizationLevel.parse("all") is OptimizationLevel.ALL
        assert OptimizationLevel.parse("NONE") is OptimizationLevel.NONE
        assert OptimizationLevel.parse(OptimizationLevel.QOQ) is OptimizationLevel.QOQ

    def test_parse_rejects_unknown(self):
        with pytest.raises(ValueError):
            OptimizationLevel.parse("turbo")

    def test_level_order_matches_paper_columns(self):
        assert [level.value for level in LEVEL_ORDER] == ["none", "dynamic", "static", "qoq", "all"]


class TestQsConfig:
    def test_none_disables_everything(self):
        config = QsConfig.none()
        assert not config.use_qoq
        assert not config.dynamic_sync_coalescing
        assert not config.static_sync_coalescing
        assert not config.client_executed_queries
        assert not config.private_queue_cache

    def test_all_enables_everything(self):
        config = QsConfig.all()
        assert all(config.flag_tuple())

    def test_dynamic_level_has_dynamic_but_not_static(self):
        config = QsConfig.from_level("dynamic")
        assert config.dynamic_sync_coalescing
        assert not config.static_sync_coalescing
        assert config.client_executed_queries

    def test_static_level_has_static_but_not_dynamic(self):
        config = QsConfig.from_level("static")
        assert config.static_sync_coalescing
        assert not config.dynamic_sync_coalescing

    def test_qoq_level_keeps_packaged_queries(self):
        config = QsConfig.from_level("qoq")
        assert config.use_qoq
        assert not config.client_executed_queries

    def test_with_overrides_single_flag(self):
        config = QsConfig.all().with_(use_qoq=False)
        assert not config.use_qoq
        assert config.dynamic_sync_coalescing

    def test_level_round_trip(self):
        for level in LEVEL_ORDER:
            assert QsConfig.from_level(level).level is level

    def test_describe_mentions_flags(self):
        assert "qoq" in QsConfig.all().describe()
        assert "no optimizations" in QsConfig.none().describe()

    def test_configs_are_hashable_and_comparable(self):
        assert QsConfig.from_level("all") == QsConfig.all()
        assert QsConfig.all() != QsConfig.none()
        {QsConfig.all(), QsConfig.none()}
