"""Tests for the queue substrate (SPSC, MPSC, private queues, queue-of-queues)."""

import threading

import pytest
from hypothesis import given, strategies as st

from repro.errors import QueryFailedError
from repro.queues.mpsc import MPSCQueue
from repro.queues.private_queue import CallRequest, END, EndMarker, PrivateQueue, SyncRequest
from repro.queues.qoq import QueueOfQueues, SHUTDOWN
from repro.queues.spsc import SPSCQueue
from repro.util.counters import Counters


class TestSPSC:
    def test_fifo_order(self):
        queue = SPSCQueue()
        for i in range(100):
            queue.put(i)
        assert [queue.get() for _ in range(100)] == list(range(100))

    def test_get_blocks_until_put(self):
        queue = SPSCQueue()
        result = []

        def consumer():
            result.append(queue.get())

        thread = threading.Thread(target=consumer)
        thread.start()
        queue.put("hello")
        thread.join(timeout=5)
        assert result == ["hello"]

    def test_close_returns_none_when_drained(self):
        queue = SPSCQueue()
        queue.put(1)
        queue.close()
        assert queue.get() == 1
        assert queue.get() is None

    def test_try_get(self):
        queue = SPSCQueue()
        assert queue.try_get() == (False, None)
        queue.put(3)
        assert queue.try_get() == (True, 3)

    def test_peek_and_len(self):
        queue = SPSCQueue()
        assert queue.peek() is None
        queue.put("x")
        assert queue.peek() == "x"
        assert len(queue) == 1

    def test_timeout_returns_none(self):
        assert SPSCQueue().get(timeout=0.01) is None

    @given(st.lists(st.integers(), max_size=200))
    def test_property_preserves_order(self, items):
        queue = SPSCQueue()
        for item in items:
            queue.put(item)
        out = [queue.get() for _ in items]
        assert out == items


class TestMPSC:
    def test_many_producers_one_consumer(self):
        queue = MPSCQueue()
        per_producer = 200
        producers = 8

        def produce(tag):
            for i in range(per_producer):
                queue.put((tag, i))

        threads = [threading.Thread(target=produce, args=(t,)) for t in range(producers)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        queue.close()
        items = []
        while (item := queue.get()) is not None:
            items.append(item)
        assert len(items) == per_producer * producers
        # per-producer FIFO is preserved even though producers interleave
        for tag in range(producers):
            mine = [i for (t, i) in items if t == tag]
            assert mine == list(range(per_producer))

    def test_put_after_close_rejected(self):
        queue = MPSCQueue()
        queue.close()
        with pytest.raises(RuntimeError):
            queue.put(1)


class TestPrivateQueue:
    def test_end_marker_is_singleton(self):
        assert EndMarker() is END

    def test_enqueue_call_counts_and_invalidates_sync(self):
        counters = Counters()
        pq = PrivateQueue(counters=counters)
        pq.synced = True
        pq.enqueue_call(CallRequest(fn=lambda: None))
        assert pq.synced is False
        assert counters.get("async_calls") == 1
        assert counters.get("pq_enqueues") == 1

    def test_enqueue_query_returns_result_box(self):
        pq = PrivateQueue()
        request = CallRequest(fn=lambda: 21 * 2)
        box = pq.enqueue_query(request)
        dequeued = pq.dequeue()
        dequeued.execute()
        assert box.wait(timeout=1) == 42

    def test_query_error_propagates(self):
        pq = PrivateQueue()

        def boom():
            raise RuntimeError("kaput")

        box = pq.enqueue_query(CallRequest(fn=boom))
        pq.dequeue().execute()
        with pytest.raises(QueryFailedError):
            box.wait(timeout=1)

    def test_sync_request_release(self):
        pq = PrivateQueue()
        request = pq.enqueue_sync()
        assert isinstance(pq.dequeue(), SyncRequest)
        request.fire()
        assert request.release.is_set()

    def test_end_closes_block(self):
        pq = PrivateQueue()
        pq.enqueue_end()
        assert pq.closed_by_client
        assert isinstance(pq.dequeue(), EndMarker)

    def test_payload_bytes_counted(self):
        counters = Counters()
        pq = PrivateQueue(counters=counters)
        pq.enqueue_call(CallRequest(fn=lambda: None, payload_bytes=123))
        assert counters.get("bytes_copied") == 123

    def test_reset_for_reuse(self):
        pq = PrivateQueue()
        pq.enqueue_end()
        pq.synced = True
        pq.reset_for_reuse()
        assert not pq.synced
        assert not pq.closed_by_client

    def test_dequeue_batch_drains_up_to_limit(self):
        pq = PrivateQueue()
        for _ in range(5):
            pq.enqueue_call(CallRequest(fn=lambda: None))
        batch = pq.dequeue_batch(3, timeout=0.0)
        assert len(batch) == 3
        assert len(pq.dequeue_batch(10, timeout=0.0)) == 2
        assert pq.dequeue_batch(10, timeout=0.0) == []

    def test_dequeue_batch_never_crosses_end_marker(self):
        # private queues are reused across separate blocks: a batch must not
        # leak the next block's requests past this block's END
        pq = PrivateQueue()
        pq.enqueue_call(CallRequest(fn=lambda: None))
        pq.enqueue_end()
        pq.reset_for_reuse()
        pq.enqueue_call(CallRequest(fn=lambda: None))
        batch = pq.dequeue_batch(10, timeout=0.0)
        assert len(batch) == 2
        assert isinstance(batch[-1], EndMarker)
        assert len(pq) == 1  # the next block's request stays queued

    def test_dequeue_batch_end_first(self):
        pq = PrivateQueue()
        pq.enqueue_end()
        batch = pq.dequeue_batch(10, timeout=0.0)
        assert batch == [END]


class TestQueueOfQueues:
    def test_fifo_of_private_queues(self):
        counters = Counters()
        qoq = QueueOfQueues(counters)
        queues = [PrivateQueue() for _ in range(5)]
        for queue in queues:
            qoq.enqueue(queue)
        assert counters.get("qoq_enqueues") == 5
        assert counters.get("reservations") == 5
        assert [qoq.dequeue() for _ in range(5)] == queues

    def test_close_signals_no_more_work(self):
        qoq = QueueOfQueues()
        qoq.close()
        assert qoq.dequeue() is SHUTDOWN
        assert qoq.closed

    def test_timeout_is_distinguishable_from_shutdown(self):
        # regression: both used to surface as None, so a handler could
        # mistake a timed-out poll for a shutdown request (or vice versa)
        qoq = QueueOfQueues()
        assert qoq.dequeue(timeout=0.01) is None          # timed out, still open
        assert qoq.try_dequeue() is None
        queue = PrivateQueue()
        qoq.enqueue(queue)
        qoq.close()
        assert qoq.dequeue(timeout=0.01) is queue         # drain continues after close
        assert qoq.dequeue(timeout=0.01) is SHUTDOWN      # closed *and* drained
        assert qoq.try_dequeue() is SHUTDOWN
        assert repr(SHUTDOWN) == "SHUTDOWN"

    def test_concurrent_reservations_all_arrive(self):
        qoq = QueueOfQueues()

        def reserve():
            for _ in range(50):
                qoq.enqueue(PrivateQueue())

        threads = [threading.Thread(target=reserve) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(qoq) == 200
