"""Tests for the schedule-exploration subsystem (`repro.explore`).

The headline properties: FIFO keeps both built-in workloads clean, random
exploration of the philosophers finds the seeded lock-ordering deadlock at
a deterministic minimal seed, and the saved schedule replays to the
*identical* failure (same stuck tasks, same virtual time).
"""

from __future__ import annotations

import threading

import json

import pytest

from repro.cli import build_parser, main
from repro.errors import SeparateAccessError
from repro.explore import FaultPlan, explore, get_workload, replay, run_once
from repro.explore.workloads import WORKLOAD_NAMES
from repro.sched.policy import ScheduleTrace

SEEDS = 30  # enough for the philosophers hunt: roughly half the seeds deadlock


class TestWorkloadRegistry:
    def test_builtin_workloads_registered(self):
        assert set(WORKLOAD_NAMES) == {"bank-transfers", "sharded-counter",
                                       "resharding-bank", "dining-philosophers"}

    def test_cli_choices_come_from_the_registry(self):
        # the explore sub-command derives its choices from WORKLOAD_NAMES,
        # so every registered workload appears in its --help automatically
        explore_parser = build_parser()._subparsers._group_actions[0].choices["explore"]
        help_text = explore_parser.format_help()
        for name in WORKLOAD_NAMES:
            assert name in help_text

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown explore workload"):
            get_workload("sleeping-barber")

    def test_instances_pass_through(self):
        workload = get_workload("bank-transfers")
        assert get_workload(workload) is workload


class TestRunOnce:
    @pytest.mark.parametrize("name", WORKLOAD_NAMES)
    def test_fifo_schedule_is_clean(self, name):
        outcome = run_once(name, policy="fifo", seed=0)
        assert outcome.ok, outcome.summary()
        assert outcome.virtual_time > 0
        assert outcome.trace is not None
        assert outcome.trace.meta["workload"] == name

    def test_outcomes_are_deterministic_per_seed(self):
        first = run_once("dining-philosophers", policy="random", seed=4)
        second = run_once("dining-philosophers", policy="random", seed=4)
        assert first.status == second.status
        assert first.virtual_time == second.virtual_time
        assert first.stuck_tasks == second.stuck_tasks
        assert [d.to_json() for d in first.trace.decisions] == \
            [d.to_json() for d in second.trace.decisions]


class TestDeadlockHunt:
    def test_random_exploration_finds_the_deadlock(self, tmp_path):
        path = tmp_path / "dining.trace.json"
        report = explore("dining-philosophers", seeds=SEEDS, policy="random",
                         save_trace=str(path))
        assert report.found_failure, "the seeded bug must be reachable within the seeds"
        failure = report.failure
        assert failure.status == "deadlock"
        assert failure.stuck_tasks, "a deadlock must name its stuck tasks"
        assert any(name.startswith("philosopher-") for name in failure.stuck_tasks)
        assert path.exists()

        # ascending seeds => the reported failure is the minimal failing seed
        for seed in range(failure.seed):
            assert run_once("dining-philosophers", policy="random", seed=seed).ok

    def test_replay_reproduces_the_identical_deadlock(self, tmp_path):
        path = tmp_path / "dining.trace.json"
        report = explore("dining-philosophers", seeds=SEEDS, policy="random",
                         save_trace=str(path))
        failure = report.failure
        outcome = replay("dining-philosophers", str(path))
        assert outcome.status == "deadlock"
        assert outcome.stuck_tasks == failure.stuck_tasks
        assert outcome.virtual_time == failure.virtual_time

    def test_replay_rejects_wrong_workload(self, tmp_path):
        path = tmp_path / "dining.trace.json"
        explore("dining-philosophers", seeds=SEEDS, policy="random",
                save_trace=str(path))
        with pytest.raises(ValueError, match="recorded for workload"):
            replay("bank-transfers", str(path))

    def test_replay_accepts_in_memory_trace(self):
        report = explore("dining-philosophers", seeds=SEEDS, policy="random")
        outcome = replay("dining-philosophers", report.failure.trace)
        assert outcome.status == "deadlock"

    def test_pct_policy_also_finds_the_deadlock(self):
        report = explore("dining-philosophers", seeds=SEEDS, policy="pct")
        assert report.found_failure
        assert report.failure.status == "deadlock"


class TestGuaranteeSide:
    def test_bank_transfers_clean_under_exploration(self):
        report = explore("bank-transfers", seeds=10, policy="random",
                         keep_outcomes=True)
        assert not report.found_failure, report.summary()
        assert report.seeds_run == 10
        assert all(outcome.ok for outcome in report.outcomes)
        # exploration must actually explore: the schedules differ across seeds
        assert report.distinct_schedules > 1

    def test_sharded_counter_clean_under_exploration(self):
        """Routing + scatter-gather interleavings fuzzed deterministically."""
        report = explore("sharded-counter", seeds=8, policy="random",
                         keep_outcomes=True)
        assert not report.found_failure, report.summary()
        assert all(outcome.ok for outcome in report.outcomes)
        assert report.distinct_schedules > 1

    def test_sharded_counter_replays_bit_exactly(self):
        first = run_once("sharded-counter", policy="random", seed=3)
        assert first.ok, first.summary()
        replayed = replay("sharded-counter", first.trace)
        assert replayed.ok
        assert replayed.virtual_time == first.virtual_time
        assert replayed.decisions == first.decisions


class TestExploreCli:
    def run_cli(self, capsys, *argv):
        code = main(list(argv))
        return code, capsys.readouterr().out

    def test_hunt_reports_seed_and_trace(self, capsys, tmp_path):
        path = tmp_path / "cli.trace.json"
        code, out = self.run_cli(capsys, "explore", "dining-philosophers",
                                 "--policy", "random", "--seeds", str(SEEDS),
                                 "--save-trace", str(path))
        assert code == 1
        assert "DEADLOCK" in out
        assert "minimal failing seed" in out
        assert str(path) in out
        assert path.exists()

    def test_replay_from_cli_matches_recording(self, capsys, tmp_path):
        path = tmp_path / "cli.trace.json"
        self.run_cli(capsys, "explore", "dining-philosophers",
                     "--policy", "random", "--seeds", str(SEEDS),
                     "--save-trace", str(path))
        code, out = self.run_cli(capsys, "explore", "dining-philosophers",
                                 "--replay", str(path))
        assert code == 1  # the reproduced failure keeps the "problems found" exit code
        assert "DEADLOCK" in out
        assert "matches recording: yes" in out

    def test_replay_detects_a_tampered_recording(self, capsys, tmp_path):
        """The match check compares against the *recorded* metadata."""
        path = tmp_path / "cli.trace.json"
        self.run_cli(capsys, "explore", "dining-philosophers",
                     "--policy", "random", "--seeds", str(SEEDS),
                     "--save-trace", str(path))
        data = json.loads(path.read_text())
        data["meta"]["status"] = "ok"
        data["meta"]["virtual_time"] = 999.0
        data["meta"]["stuck_tasks"] = []
        path.write_text(json.dumps(data))
        code, out = self.run_cli(capsys, "explore", "dining-philosophers",
                                 "--replay", str(path))
        assert code == 1
        assert "matches recording: NO" in out

    def test_replay_with_mismatched_sizes_diverges(self, capsys, tmp_path):
        """Explicit --clients overrides the recorded value and is detected.

        A different philosopher count changes the task set, so the replay
        policy sees different candidates and reports the divergence instead
        of silently exploring another schedule.
        """
        path = tmp_path / "cli.trace.json"
        self.run_cli(capsys, "explore", "dining-philosophers",
                     "--policy", "random", "--seeds", str(SEEDS),
                     "--save-trace", str(path))
        code, out = self.run_cli(capsys, "explore", "dining-philosophers",
                                 "--replay", str(path), "--clients", "5")
        assert code == 1
        assert "DIVERGENCE" in out
        assert "matches recording: NO" in out

    def test_clean_workload_exits_zero(self, capsys, tmp_path):
        code, out = self.run_cli(capsys, "explore", "bank-transfers",
                                 "--seeds", "5",
                                 "--save-trace", str(tmp_path / "unused.json"))
        assert code == 0
        assert "no failures" in out

    def test_unknown_workload_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "sleeping-barber"])

    def test_fuzzing_flags_without_workload_rejected(self):
        # a forgotten workload must not silently fall back to semantics mode
        with pytest.raises(SystemExit, match="requires a workload"):
            main(["explore", "--replay", "some.trace.json"])
        with pytest.raises(SystemExit, match="requires a workload"):
            main(["explore", "--save-trace", "out.json"])


class TestReshardingBank:
    """Live migration fuzzing: lossless under every explored interleaving."""

    @pytest.mark.parametrize("policy", ["random", "pct"])
    def test_fuzzed_migration_interleavings_stay_lossless(self, policy):
        report = explore("resharding-bank", seeds=8, policy=policy)
        assert not report.found_failure, report.failure.summary()
        assert report.seeds_run == 8

    def test_fault_plan_travels_in_trace_meta_and_replays(self):
        plan = FaultPlan(reshards=(4, 6, 2))
        outcome = run_once("resharding-bank", policy="random", seed=5, faults=plan)
        assert outcome.ok, outcome.summary()
        assert outcome.trace.meta["reshards"] == [4, 6, 2]
        # replay rebuilds the same plan from the metadata: identical run
        again = replay("resharding-bank", outcome.trace)
        assert again.ok, again.summary()
        assert again.virtual_time == outcome.virtual_time
        assert again.decisions == outcome.decisions

    def test_default_plan_is_recorded(self):
        outcome = run_once("resharding-bank", policy="fifo", seed=0)
        assert outcome.trace.meta["reshards"] == [5, 2]

    def test_non_fault_aware_workloads_reject_plans(self):
        with pytest.raises(ValueError, match="not fault-aware"):
            run_once("bank-transfers", faults=FaultPlan())


class TestTraceMetadata:
    def test_failure_metadata_travels_with_the_trace(self, tmp_path):
        path = tmp_path / "dining.trace.json"
        report = explore("dining-philosophers", seeds=SEEDS, policy="random",
                         save_trace=str(path))
        trace = ScheduleTrace.load(str(path))
        assert trace.meta["workload"] == "dining-philosophers"
        assert trace.meta["status"] == "deadlock"
        assert trace.meta["stuck_tasks"] == list(report.failure.stuck_tasks)
        assert trace.meta["virtual_time"] == report.failure.virtual_time
        assert trace.policy == "random"
        assert trace.seed == report.failure.seed


@pytest.mark.threads_only
class TestThreadsOnlyMarker:
    """Demonstrates the opt-out for genuinely thread-bound tests."""

    def test_foreign_threads_may_join_the_threaded_runtime(self, qs_runtime):
        # raw threads interacting with the runtime only exist on the
        # threaded backend; the simulator rejects them by design
        assert qs_runtime.backend.name == "threads"
        errors = []

        def outsider():
            try:
                qs_runtime.current_client()
            except SeparateAccessError as exc:  # pragma: no cover - smoke
                errors.append(exc)

        thread = threading.Thread(target=outsider)
        thread.start()
        thread.join()
        assert not errors
