"""Tests for the ``python -m repro`` command-line interface."""

import pytest

from repro.cli import build_parser, main
from repro.workloads.runnable import EXAMPLE_NAMES, EXAMPLES


def run_cli(capsys, *argv):
    code = main(list(argv))
    captured = capsys.readouterr()
    return code, captured.out


class TestParser:
    def test_every_subcommand_registered(self):
        parser = build_parser()
        text = parser.format_help()
        for command in ("levels", "experiment", "figures", "ir", "explore", "trace", "run"):
            assert command in text
        assert "--backend" in text

    def test_missing_subcommand_is_an_error(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])


class TestLevels:
    def test_levels_matrix_lists_all_five_columns(self, capsys):
        code, out = run_cli(capsys, "levels")
        assert code == 0
        for level in ("none", "dynamic", "static", "qoq", "all"):
            assert level in out
        assert "qoq" in out and "dyn-sync" in out


class TestIr:
    def test_fig14_demo_elides_loop_syncs(self, capsys):
        code, out = run_cli(capsys, "ir", "--demo", "fig14", "--opt", "elide")
        assert code == 0
        assert "sync coalescing removed 2/3 syncs" in out
        assert "sync-sets" in out and "dominator tree" in out

    def test_fig15_demo_blocked_by_aliasing_until_told_otherwise(self, capsys):
        _, out_conservative = run_cli(capsys, "ir", "--demo", "fig15", "--opt", "elide")
        assert "removed 0/3" in out_conservative
        _, out_distinct = run_cli(capsys, "ir", "--demo", "fig15", "--opt", "elide",
                                  "--distinct", "h_p,i_p")
        assert "removed 2/3" in out_distinct

    def test_lowering_then_eliding_straightline_queries(self, capsys):
        code, out = run_cli(capsys, "ir", "--demo", "straightline", "--lower", "--opt", "elide")
        assert code == 0
        assert "after query lowering" in out
        assert "removed 3/4 syncs" in out

    def test_ir_from_file_round_trips(self, capsys, tmp_path):
        from repro.compiler.builder import fig14_loop
        from repro.compiler.printer import print_function

        path = tmp_path / "fn.ir"
        path.write_text(print_function(fig14_loop()), encoding="utf-8")
        code, out = run_cli(capsys, "ir", "--file", str(path), "--opt", "hoist")
        assert code == 0
        assert "hoisted" in out

    def test_unknown_demo_rejected(self):
        with pytest.raises(SystemExit):
            main(["ir", "--demo", "does-not-exist"])


class TestExplore:
    def test_fig6_without_queries_reports_no_deadlock(self, capsys):
        code, out = run_cli(capsys, "explore", "--program", "fig6")
        assert code == 0
        assert "acyclic" in out
        assert "0 deadlocked" in out

    def test_fig6_with_queries_reports_cycle_and_deadlock(self, capsys):
        code, out = run_cli(capsys, "explore", "--program", "fig6-queries")
        assert code == 1
        assert "potential deadlock cycle" in out
        assert "deadlocked" in out

    def test_random_program_exploration(self, capsys):
        code, out = run_cli(capsys, "explore", "--random", "7", "--max-states", "50000")
        assert code in (0, 1)
        assert "random configuration (seed 7)" in out
        assert "explored" in out

    def test_unknown_program_rejected(self):
        with pytest.raises(SystemExit):
            main(["explore", "--program", "fig99"])


class TestTrace:
    def test_trace_run_checks_guarantees(self, capsys):
        code, out = run_cli(capsys, "trace", "--clients", "2", "--iterations", "2", "--tail", "5")
        assert code == 0
        assert "recorded" in out
        assert "reasoning guarantees hold" in out

    def test_trace_run_on_the_lock_based_level(self, capsys):
        code, out = run_cli(capsys, "trace", "--level", "none", "--clients", "2", "--iterations", "1")
        assert code == 0
        assert "level 'none'" in out


class TestRun:
    def test_example_choices_come_from_the_registry(self):
        # `repro run` derives its choices and help text from the runnable
        # registry, so a newly registered example appears automatically
        assert set(EXAMPLE_NAMES) == {"bank-transfers", "dining-philosophers",
                                      "sharded-bank"}
        help_text = build_parser().format_help()
        for name in EXAMPLE_NAMES:
            assert name in help_text
        run_parser = build_parser()._subparsers._group_actions[0].choices["run"]
        run_help = run_parser.format_help()
        for example in EXAMPLES.values():
            assert example.name in run_help

    @pytest.mark.parametrize("name", EXAMPLE_NAMES)
    def test_every_registered_example_runs_clean(self, capsys, name):
        # ONE parametrised test covers every runnable example on the
        # deterministic sim backend (new registrations are tested for free)
        code, out = run_cli(capsys, "--backend", "sim", "run", name,
                            "--clients", "3", "--iterations", "4", "--shards", "2")
        assert code == 0, f"{name} failed:\n{out}"
        assert "NOT conserved" not in out and "INCONSISTENT" not in out

    def test_sharded_bank_identical_on_both_backends(self, capsys):
        outputs = {}
        for backend in ("threads", "sim"):
            code, out = run_cli(capsys, "--backend", backend, "run", "sharded-bank",
                                "--clients", "3", "--iterations", "5", "--shards", "3")
            assert code == 0
            assert "money conserved across 3 shards" in out
            outputs[backend] = [line for line in out.splitlines() if "backend=" not in line]
        assert outputs["threads"] == outputs["sim"]

    def test_run_validations(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(["run", "sharded-bank", "--shards", "0"])
        with pytest.raises(SystemExit, match="at least 2"):
            main(["run", "dining-philosophers", "--clients", "1"])
        with pytest.raises(SystemExit, match="non-negative"):
            main(["run", "bank-transfers", "--clients", "-1"])

    def test_bank_transfers_identical_on_both_backends(self, capsys):
        outputs = {}
        for backend in ("threads", "sim"):
            code, out = run_cli(capsys, "--backend", backend, "run", "bank-transfers",
                                "--clients", "2", "--iterations", "5")
            assert code == 0
            assert "money conserved" in out
            # drop the backend=... prefix: everything else must match exactly
            outputs[backend] = [line for line in out.splitlines() if "backend=" not in line]
        assert outputs["threads"] == outputs["sim"]

    def test_dining_philosophers_identical_on_both_backends(self, capsys):
        outputs = {}
        for backend in ("threads", "sim"):
            code, out = run_cli(capsys, "--backend", backend, "run", "dining-philosophers",
                                "--clients", "3", "--iterations", "4")
            assert code == 0
            assert "no deadlock" in out
            outputs[backend] = [line for line in out.splitlines() if "backend=" not in line]
        assert outputs["threads"] == outputs["sim"]

    def test_unknown_example_rejected(self):
        with pytest.raises(SystemExit):
            main(["run", "fizzbuzz"])


class TestBackendOption:
    def test_trace_runs_on_the_sim_backend(self, capsys):
        code, out = run_cli(capsys, "--backend", "sim", "trace",
                            "--clients", "2", "--iterations", "2", "--tail", "3")
        assert code == 0
        assert "reasoning guarantees hold" in out

    def test_unknown_backend_rejected(self):
        with pytest.raises(SystemExit):
            main(["--backend", "quantum", "run", "bank-transfers"])

    def test_full_spec_strings_accepted_by_the_flag(self, capsys):
        # --backend takes any spec create_backend would (not just bare names)
        code, out = run_cli(capsys, "--backend", "sim:random:7", "trace",
                            "--clients", "2", "--iterations", "1", "--tail", "3")
        assert code == 0
        assert "reasoning guarantees hold" in out

    def test_malformed_spec_rejected_at_the_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["--backend", "process:msgpack", "run", "bank-transfers"])
        assert "invalid backend spec" in capsys.readouterr().err

    @pytest.mark.parametrize("spec", ["process", "process:4:pickle", "PROCESS",
                                      "process+async", "process+async:4:2:bin",
                                      "hybrid", "PROCESS+ASYNC"])
    def test_trace_rejects_every_process_spec_spelling(self, spec):
        # the guard normalises through BackendSpec.parse, so a full spec or
        # an alias cannot sneak a process-hosted backend (plain or hybrid)
        # past it
        with pytest.raises(SystemExit, match="handler-side trace events"):
            main(["--backend", spec, "trace", "--clients", "1", "--iterations", "1"])

    @pytest.mark.parametrize("spec", ["process", "process:2:json", "PROCESS",
                                      "process+async:2:2", "hybrid"])
    def test_trace_rejects_process_specs_from_the_environment(self, spec, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", spec)
        with pytest.raises(SystemExit, match="handler-side trace events"):
            main(["trace", "--clients", "1", "--iterations", "1"])


class TestSpecGrammar:
    # the one grammar drives the help text AND every parse error, so the
    # three can never drift apart (ws-normalised: argparse re-wraps lines)
    @staticmethod
    def _normalize(text):
        return " ".join(text.split())

    def test_help_text_derives_from_spec_grammar(self):
        from repro.backends import SPEC_GRAMMAR

        help_text = build_parser().format_help()
        assert self._normalize(SPEC_GRAMMAR) in self._normalize(help_text)

    def test_spec_parse_errors_quote_the_grammar(self):
        from repro.backends import SPEC_GRAMMAR, BackendSpec

        with pytest.raises(ValueError) as excinfo:
            BackendSpec.parse("process:msgpack")
        assert SPEC_GRAMMAR in str(excinfo.value)

    def test_parser_rejection_quotes_the_grammar(self, capsys):
        from repro.backends import SPEC_GRAMMAR

        with pytest.raises(SystemExit):
            main(["--backend", "process:msgpack", "run", "bank-transfers"])
        err = capsys.readouterr().err
        assert self._normalize(SPEC_GRAMMAR) in self._normalize(err)


class TestServe:
    def test_serve_registered_with_its_options(self):
        serve_parser = build_parser()._subparsers._group_actions[0].choices["serve"]
        serve_help = serve_parser.format_help()
        for option in ("--host", "--port", "--shards", "--watermark", "--no-cache",
                       "--load", "--rate", "--duration", "--cases",
                       "--read-fraction", "--seed"):
            assert option in serve_help

    def test_serve_validations(self):
        with pytest.raises(SystemExit, match="--shards"):
            main(["serve", "--shards", "0"])
        with pytest.raises(SystemExit, match="--rate"):
            main(["serve", "--load", "--rate", "0"])
        with pytest.raises(SystemExit, match="--read-fraction"):
            main(["serve", "--load", "--read-fraction", "1.5"])

    def test_serve_rejects_the_sim_backend(self):
        with pytest.raises(SystemExit, match="virtual time"):
            main(["--backend", "sim", "serve", "--port", "0", "--duration", "0.1"])

    def test_serve_load_run_passes_its_oracles(self, capsys):
        code, out = run_cli(capsys, "serve", "--port", "0", "--load",
                            "--rate", "150", "--duration", "0.5",
                            "--cases", "8", "--seed", "7")
        assert code == 0, out
        assert "serving cases on http://" in out
        assert "oracles: ok" in out
        assert "lost_writes: 0" in out
        assert "duplicated_writes: 0" in out
        assert "read_your_writes: True" in out


class TestExperimentAndFigures:
    def test_experiment_table5_runs_from_the_cli(self, capsys):
        code, out = run_cli(capsys, "experiment", "table5")
        assert code == 0
        assert "Table 5" in out and "Geometric means" in out

    def test_figures_fig20_renders(self, capsys):
        code, out = run_cli(capsys, "figures", "fig20")
        assert code == 0
        assert "Fig. 20" in out and "chameneos" in out
