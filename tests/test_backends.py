"""Backend parity: the same programs, observations and counters either way.

The point of the backend seam is that *nothing observable about a program*
depends on whether it runs on OS threads, on the virtual-time simulator or
across OS processes.  These tests run the paper's flagship scenarios — bank
transfers with an auditor (Fig. 5), dining philosophers (Section 2.4), a
sync-coalescing block — under all three backends and assert identical
results and identical schedule-independent counters; plus the sim-only
guarantees: bitwise reproducibility and deadlock detection.
"""

from __future__ import annotations

import random

import pytest

from repro import DeadlockError, QsRuntime, SeparateObject, command, query
from repro.backends import (AsyncBackend, BackendSpec, HybridBackend, ProcessBackend, SimBackend,
                            ThreadedBackend, create_backend)
from repro.config import QsConfig
from repro.workloads.concurrent.runner import run_concurrent
from repro.workloads.params import ConcurrentSizes

BACKENDS = ("threads", "sim", "process", "async", "process+async:2:2")

#: counters whose values are schedule-independent for the workloads below
#: (retry-style counters like lock_waits or wait_condition_retries are not)
PARITY_COUNTERS = (
    "async_calls",
    "queries",
    "sync_roundtrips",
    "syncs_elided",
    "reservations",
    "multi_reservations",
    "qoq_enqueues",
    "calls_executed",
)


class Account(SeparateObject):
    def __init__(self, balance: int) -> None:
        self.balance = balance

    @command
    def credit(self, amount: int) -> None:
        self.balance += amount

    @command
    def debit(self, amount: int) -> None:
        self.balance -= amount

    @query
    def read(self) -> int:
        return self.balance


class Fork(SeparateObject):
    def __init__(self) -> None:
        self.uses = 0

    @command
    def use(self) -> None:
        self.uses += 1

    @query
    def total_uses(self) -> int:
        return self.uses


class Counter(SeparateObject):
    def __init__(self) -> None:
        self.value = 0

    @command
    def increment(self) -> None:
        self.value += 1

    @query
    def read(self) -> int:
        return self.value


# ----------------------------------------------------------------------------
# workload drivers (shared by the parity assertions)
# ----------------------------------------------------------------------------
def bank_workload(backend: str) -> dict:
    observed = []
    with QsRuntime("all", backend=backend) as rt:
        alice = rt.new_handler("alice").create(Account, 1_000)
        bob = rt.new_handler("bob").create(Account, 1_000)

        def transferrer(seed: int) -> None:
            rng = random.Random(seed)
            for _ in range(15):
                amount = rng.randint(1, 20)
                with rt.separate(alice, bob) as (a, b):
                    a.debit(amount)
                    b.credit(amount)

        def auditor() -> None:
            for _ in range(8):
                with rt.separate(alice, bob) as (a, b):
                    observed.append(a.read() + b.read())

        for i in range(3):
            rt.spawn_client(transferrer, i, name=f"transfer-{i}")
        rt.spawn_client(auditor, name="auditor")
        rt.join_clients()
        with rt.separate(alice, bob) as (a, b):
            final = (a.read(), b.read())
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    return {"final": final, "observed": observed, "counters": counters}


def philosophers_workload(backend: str) -> dict:
    n, rounds = 5, 6
    with QsRuntime("all", backend=backend) as rt:
        forks = [rt.new_handler(f"fork-{i}").create(Fork) for i in range(n)]
        meals = [0] * n

        def philosopher(i: int) -> None:
            left, right = forks[i], forks[(i + 1) % n]
            for _ in range(rounds):
                with rt.separate(left, right) as (fl, fr):
                    fl.use()
                    fr.use()
                    meals[i] += 1

        for i in range(n):
            rt.spawn_client(philosopher, i, name=f"philosopher-{i}")
        rt.join_clients()
        with rt.separate(*forks) as proxies:
            uses = [proxy.total_uses() for proxy in proxies]
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    return {"meals": meals, "uses": uses, "counters": counters}


def coalescing_workload(backend: str) -> dict:
    """Back-to-back queries in one block: one sync, the rest elided."""
    with QsRuntime("all", backend=backend) as rt:
        ref = rt.new_handler("counter").create(Counter)
        values = []
        for _ in range(4):
            with rt.separate(ref) as c:
                c.increment()
                values.append((c.read(), c.read(), c.read()))
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    return {"values": values, "counters": counters}


# ----------------------------------------------------------------------------
# per-backend correctness
# ----------------------------------------------------------------------------
@pytest.mark.parametrize("backend", BACKENDS)
class TestEachBackend:
    def test_bank_conserves_money(self, backend):
        result = bank_workload(backend)
        assert sum(result["final"]) == 2_000
        assert all(total == 2_000 for total in result["observed"])

    def test_philosophers_all_eat(self, backend):
        result = philosophers_workload(backend)
        assert result["meals"] == [6] * 5
        assert sum(result["uses"]) == 2 * sum(result["meals"])

    def test_sync_coalescing_counts(self, backend):
        result = coalescing_workload(backend)
        assert result["values"] == [(1, 1, 1), (2, 2, 2), (3, 3, 3), (4, 4, 4)]
        # per block: the first read syncs, the two repeats are elided
        assert result["counters"]["sync_roundtrips"] == 4
        assert result["counters"]["syncs_elided"] == 8

    def test_workloads_runner_unmodified(self, backend, monkeypatch):
        # this test selects the backend through the *config*, which the
        # documented resolution order lets REPRO_BACKEND override
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        sizes = ConcurrentSizes(n=2, m=5, nt=20, ring_size=4, nc=10)
        config = QsConfig.all().with_(backend=backend)
        assert run_concurrent("mutex", config, sizes).value == 10
        if backend.startswith("process"):
            # threadring wires the runtime and SeparateRefs *into* handler
            # state so handlers act as clients of each other — inherently a
            # shared-memory workload (see docs/backends.md, process limits);
            # the hybrid composite hosts handlers the same way
            pytest.skip("threadring requires shared-memory handler state")
        if backend == "async":
            # threadring's handlers issue blocking queries from inside
            # request bodies; on the shared event loop that would stall
            # every handler (see docs/backends.md, async limits)
            pytest.skip("threadring blocks inside handler bodies")
        assert run_concurrent("threadring", config, sizes).value["passes"] == 21


# ----------------------------------------------------------------------------
# cross-backend parity
# ----------------------------------------------------------------------------
@pytest.mark.parametrize("workload", [bank_workload, philosophers_workload,
                                      coalescing_workload],
                         ids=["bank", "philosophers", "coalescing"])
def test_backends_agree(workload):
    results = {backend: workload(backend) for backend in BACKENDS}
    reference = results["threads"]
    for backend in BACKENDS[1:]:
        assert results[backend] == reference, (
            f"observable results and counters must not depend on the backend "
            f"({backend} vs threads)")


#: backend spec variants that must stay observationally identical to their
#: base backend: every wire codec, and every async loop count
SPEC_VARIANTS = ("process:2:json", "process:2:pickle", "process:2:bin",
                 "async:2", "async:3",
                 "process+async:2:2:json", "process+async:2:2:bin",
                 "process+async:2:1", "process+async:1:2")


@pytest.mark.parametrize("spec", SPEC_VARIANTS)
def test_codec_and_loop_variants_agree(spec):
    """Parity across wire codecs and loop counts, not just backend names.

    The bin codec and frame coalescing must not change a single parity
    counter relative to json/pickle (the coalescing threshold is a pure
    frame count for exactly this reason), and handlers spread over N event
    loops must behave like handlers sharing one.
    """
    reference = bank_workload("threads")
    result = bank_workload(spec)
    assert result == reference, (
        f"observable results and counters must not depend on the wire codec "
        f"or loop count ({spec} vs threads)")


# ----------------------------------------------------------------------------
# sim-only guarantees
# ----------------------------------------------------------------------------
class TestSimDeterminism:
    def _run(self):
        with QsRuntime("all", backend="sim") as rt:
            result = bank_workload_inline(rt)
            virtual = rt.backend.now()
            fingerprint = rt.backend.schedule_trace()
            counters = rt.stats().as_dict()
        return result, virtual, fingerprint, counters

    def test_identical_runs(self):
        first = self._run()
        second = self._run()
        assert first == second

    def test_virtual_time_advances(self):
        _, virtual, _, _ = self._run()
        assert virtual > 0


def bank_workload_inline(rt) -> tuple:
    alice = rt.new_handler("alice").create(Account, 500)
    bob = rt.new_handler("bob").create(Account, 500)

    def transferrer(seed: int) -> None:
        rng = random.Random(seed)
        for _ in range(10):
            with rt.separate(alice, bob) as (a, b):
                amount = rng.randint(1, 9)
                a.debit(amount)
                b.credit(amount)

    for i in range(3):
        rt.spawn_client(transferrer, i, name=f"t-{i}")
    rt.join_clients()
    with rt.separate(alice, bob) as (a, b):
        return (a.read(), b.read())


class TestSimDeadlockDetection:
    def test_circular_wait_is_reported(self):
        """A hang under threads becomes an immediate DeadlockError under sim."""
        with pytest.raises(DeadlockError):
            with QsRuntime("all", backend="sim") as rt:
                r1 = rt.new_handler("h1").create(Counter)
                r2 = rt.new_handler("h2").create(Counter)
                ea, eb = rt.event(), rt.event()

                def a() -> None:
                    with rt.separate(r1):
                        ea.set()
                        eb.wait()
                        with rt.separate(r2) as y:
                            y.read()

                def b() -> None:
                    with rt.separate(r2):
                        eb.set()
                        ea.wait()
                        with rt.separate(r1) as y:
                            y.read()

                rt.spawn_client(a, name="A")
                rt.spawn_client(b, name="B")
                rt.join_clients()

    def test_deadlock_free_program_is_clean(self):
        # the multi-reservation variant of the same program cannot deadlock
        with QsRuntime("all", backend="sim") as rt:
            r1 = rt.new_handler("h1").create(Counter)
            r2 = rt.new_handler("h2").create(Counter)

            def worker() -> None:
                with rt.separate(r1, r2) as (x, y):
                    x.increment()
                    y.increment()

            rt.spawn_client(worker, name="A")
            rt.spawn_client(worker, name="B")
            rt.join_clients()
            with rt.separate(r1, r2) as (x, y):
                assert (x.read(), y.read()) == (2, 2)


# ----------------------------------------------------------------------------
# selection plumbing
# ----------------------------------------------------------------------------
class TestBackendSelection:
    def test_create_backend_names(self):
        assert isinstance(create_backend("threads"), ThreadedBackend)
        assert isinstance(create_backend("threaded"), ThreadedBackend)
        assert isinstance(create_backend("sim"), SimBackend)
        assert isinstance(create_backend("process"), ProcessBackend)
        assert isinstance(create_backend("async"), AsyncBackend)
        assert isinstance(create_backend("asyncio"), AsyncBackend)
        instance = ThreadedBackend()
        assert create_backend(instance) is instance

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="invalid backend spec 'quantum'"):
            create_backend("quantum")

    def test_process_spec_components(self):
        backend = create_backend("process:2:json")
        assert backend.processes == 2 and backend.codec == "json"
        backend = create_backend("process:pickle")
        assert backend.processes is None and backend.codec == "pickle"
        backend = create_backend("process:4")
        assert backend.processes == 4 and backend.codec == "pickle"
        backend = create_backend("process:2:bin")
        assert backend.processes == 2 and backend.codec == "bin"

    def test_async_spec_loop_count(self):
        assert create_backend("async").nloops == 1
        assert create_backend("async:1").nloops == 1
        assert create_backend("async:4").nloops == 4

    # every malformed spec — wrong name, wrong component, stray component,
    # empty component — must raise ONE consistent error quoting the grammar
    @pytest.mark.parametrize("spec", [
        "quantum",
        "sim:bogus",             # unknown scheduling policy
        "sim:random:x",          # non-integer seed
        "process:msgpack",       # neither count nor codec
        "process:2:3",           # two counts
        "process:json:pickle",   # two codecs
        "process:abc:",          # invalid then empty component
        "process::json",         # empty component
        "threads:2",             # threads takes no components
        "async:fast",            # loop count must be a positive integer
        "async:0",
        "async:2:2",
        "process+async:fast",    # composite: neither a count nor a codec
        "process+async:2:2:2",   # composite: more than two counts
        "process+async:2:0",     # composite: loop count must be positive
        "process+async::2",      # composite: empty component
        "process+async:json:bin",  # composite: two codecs
    ])
    def test_malformed_specs_all_quote_the_grammar(self, spec):
        with pytest.raises(ValueError) as excinfo:
            create_backend(spec)
        message = str(excinfo.value)
        assert message.startswith(f"invalid backend spec {spec.lower()!r}: ")
        assert ("threads | sim[:policy[:seed]] | process[:nproc][:codec] "
                "| async[:nloops]") in message

    def test_spec_error_reasons_are_actionable(self):
        with pytest.raises(ValueError, match="unknown scheduling policy 'bogus'"):
            create_backend("sim:bogus")
        with pytest.raises(ValueError, match="invalid component 'msgpack'"):
            create_backend("process:msgpack")
        with pytest.raises(ValueError, match="two process counts"):
            create_backend("process:2:3")
        with pytest.raises(ValueError, match="takes no spec components"):
            create_backend("threads:4")
        with pytest.raises(ValueError, match="invalid event-loop count 'fast'"):
            create_backend("async:fast")
        with pytest.raises(ValueError, match="invalid event-loop count '0'"):
            create_backend("async:0")
        with pytest.raises(ValueError, match="more than a process count and a loop count"):
            create_backend("process+async:2:2:2")
        with pytest.raises(ValueError, match="invalid event-loop count 0"):
            create_backend("process+async:2:0")
        with pytest.raises(ValueError, match="invalid component 'fast'"):
            create_backend("process+async:fast")

    def test_backend_spec_parse_and_round_trip(self):
        spec = BackendSpec.parse("process:4:pickle")
        assert spec == BackendSpec(name="process", processes=4, codec="pickle")
        assert spec.to_spec() == "process:4:pickle"
        assert str(spec) == "process:4:pickle"
        # round trip: parse(to_spec()) is the identity
        for text in ("threads", "sim", "sim:random", "sim:random:7",
                     "process", "process:2", "process:json", "process:2:json",
                     "process:2:bin", "async", "async:2", "async:8",
                     "process+async", "process+async:4", "process+async:4:2",
                     "process+async:4:2:bin", "process+async:json"):
            parsed = BackendSpec.parse(text)
            assert BackendSpec.parse(parsed.to_spec()) == parsed
        # aliases canonicalise, case-insensitively
        assert BackendSpec.parse("PROCESS").name == "process"
        assert BackendSpec.parse("Threaded").name == "threads"
        assert BackendSpec.parse("virtual").name == "sim"
        assert BackendSpec.parse("asyncio").name == "async"
        assert BackendSpec.parse("hybrid").name == "process+async"
        # the composite parses positionally: nproc, then nloops, then codec
        spec = BackendSpec.parse("process+async:4:2:bin")
        assert spec == BackendSpec(name="process+async", processes=4,
                                   loops=2, codec="bin")
        assert spec.to_spec() == "process+async:4:2:bin"
        # instances pass through parse unchanged
        assert BackendSpec.parse(spec) is spec

    def test_backend_spec_create_builds_the_right_backend(self):
        backend = BackendSpec.parse("process:3:json").create()
        assert isinstance(backend, ProcessBackend)
        assert backend.processes == 3 and backend.codec == "json"
        hybrid = BackendSpec.parse("process+async:3:2:json").create()
        assert isinstance(hybrid, HybridBackend)
        assert hybrid.processes == 3 and hybrid.nloops == 2 and hybrid.codec == "json"
        assert BackendSpec.parse("process+async").create().nloops == 1
        sim = BackendSpec.parse("sim:random:9").create()
        assert isinstance(sim, SimBackend)
        assert isinstance(BackendSpec.parse("threads").create(), ThreadedBackend)

    def test_backend_spec_errors_match_string_specs(self):
        # BackendSpec.parse and create_backend raise the identical message
        for bad in ("quantum", "sim:bogus", "process:2:3", "threads:4"):
            with pytest.raises(ValueError) as via_spec:
                BackendSpec.parse(bad)
            with pytest.raises(ValueError) as via_create:
                create_backend(bad)
            assert str(via_spec.value) == str(via_create.value)

    def test_runtime_and_config_accept_backend_spec(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with QsRuntime("all", backend=BackendSpec.parse("sim")) as rt:
            assert rt.backend.name == "sim"
        config = QsConfig.all().with_(backend=BackendSpec(name="sim"))
        with QsRuntime(config) as rt:
            assert rt.backend.name == "sim"
        assert "backend=sim" in config.describe()

    def test_env_var_spec_errors_match_direct_ones(self, monkeypatch):
        # REPRO_BACKEND goes through the same parser, so a typo in the
        # environment produces the same actionable message
        monkeypatch.setenv("REPRO_BACKEND", "sim:bogus")
        with pytest.raises(ValueError, match="invalid backend spec 'sim:bogus'"):
            QsRuntime("all")

    def test_config_carries_backend(self, monkeypatch):
        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        config = QsConfig.all().with_(backend="sim")
        with QsRuntime(config) as rt:
            assert rt.backend.name == "sim"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sim")
        with QsRuntime("all") as rt:
            assert rt.backend.name == "sim"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "sim")
        with QsRuntime("all", backend="threads") as rt:
            assert rt.backend.name == "threads"

    def test_sim_backend_cannot_be_reattached(self):
        backend = SimBackend()
        with QsRuntime("all", backend=backend):
            pass
        with pytest.raises(Exception, match="cannot be attached twice"):
            QsRuntime("all", backend=backend)

    def test_runtime_event_matches_backend(self):
        with QsRuntime("all") as rt:
            event = rt.event()
            event.set()
            assert event.is_set()
        with QsRuntime("all", backend="sim") as rt:
            event = rt.event()
            event.set()
            assert event.is_set()
