"""Tests for the static wait-for-graph deadlock analysis (Section 2.5)."""

import pytest

from repro.semantics.explorer import Explorer
from repro.semantics.generator import ProgramSpec, random_configuration, random_programs
from repro.semantics.programs import fig6_nested
from repro.semantics.syntax import Call, Query, Separate, seq
from repro.semantics.waitgraph import (
    build_wait_graph,
    explain,
    is_statically_deadlock_free,
    potential_deadlock_cycles,
)


def fig6_programs(with_queries: bool, query_inner: bool = True):
    """Fig. 6's client programs as a plain name -> statement mapping."""
    def client(outer, inner):
        body = seq(Call("x", "foo"), Call("y", "bar"))
        if with_queries:
            body = seq(body, Query(inner if query_inner else outer, "value"))
        return Separate((outer,), Separate((inner,), body))

    return {"c1": client("x", "y"), "c2": client("y", "x")}


class TestWaitGraphConstruction:
    def test_asynchronous_calls_create_no_edges(self):
        programs = fig6_programs(with_queries=False)
        graph = build_wait_graph(programs)
        assert graph.edges == []
        assert is_statically_deadlock_free(programs)

    def test_nested_query_creates_edge_from_outer_to_inner(self):
        programs = fig6_programs(with_queries=True)
        graph = build_wait_graph(programs)
        assert {(e.holder, e.target) for e in graph.edges} == {("x", "y"), ("y", "x")}
        assert {e.client for e in graph.edges} == {"c1", "c2"}

    def test_query_on_the_only_held_handler_creates_no_edge(self):
        # Fig. 1: t2 queries x while holding only x -> no cross-handler wait
        graph = build_wait_graph({"t1": Separate(("x",), Query("x", "baz"))})
        assert graph.edges == []

    def test_multi_reservation_query_edges_from_every_other_held_handler(self):
        program = Separate(("x", "y", "z"), Query("z", "value"))
        graph = build_wait_graph({"c": program})
        assert {(e.holder, e.target) for e in graph.edges} == {("x", "z"), ("y", "z")}


class TestCycleDetection:
    def test_fig6_with_inner_queries_has_a_cycle(self):
        programs = fig6_programs(with_queries=True, query_inner=True)
        cycles = potential_deadlock_cycles(build_wait_graph(programs))
        assert cycles == [("x", "y")]
        assert not is_statically_deadlock_free(programs)

    def test_fig6_without_queries_is_acyclic(self):
        assert potential_deadlock_cycles(build_wait_graph(fig6_programs(False))) == []

    def test_self_loops_do_not_arise_from_well_formed_programs(self):
        programs = fig6_programs(with_queries=True)
        graph = build_wait_graph(programs)
        assert all(e.holder != e.target for e in graph.edges)

    def test_explain_mentions_every_cycle_edge(self):
        programs = fig6_programs(with_queries=True)
        graph = build_wait_graph(programs)
        text = explain(graph, potential_deadlock_cycles(graph))
        assert "x -> y -> x" in text
        assert "c1" in text and "c2" in text

    def test_explain_for_acyclic_graph(self):
        graph = build_wait_graph(fig6_programs(False))
        assert "acyclic" in explain(graph, potential_deadlock_cycles(graph))

    def test_three_handler_cycle(self):
        programs = {
            "c1": Separate(("a",), Separate(("b",), Query("b", "v"))),
            "c2": Separate(("b",), Separate(("c",), Query("c", "v"))),
            "c3": Separate(("c",), Separate(("a",), Query("a", "v"))),
        }
        cycles = potential_deadlock_cycles(build_wait_graph(programs))
        assert ("a", "b", "c") in cycles


class TestAgreementWithExplorer:
    """The static analysis is a sound over-approximation of the explorer."""

    def test_acyclic_graph_implies_no_reachable_deadlock_fig6(self):
        assert is_statically_deadlock_free(fig6_programs(False))
        result = Explorer().explore(fig6_nested(with_queries=False))
        assert not result.has_deadlock

    def test_cycle_is_necessary_for_the_paper_deadlock(self):
        assert not is_statically_deadlock_free(fig6_programs(True))
        result = Explorer().explore(fig6_nested(with_queries=True))
        assert result.has_deadlock  # here the potential cycle is realised

    @pytest.mark.parametrize("seed", range(12))
    def test_soundness_on_random_programs(self, seed):
        """If the wait-for graph is acyclic, the explorer must find no deadlock."""
        spec = ProgramSpec(max_blocks_per_client=1, max_calls_per_block=2)
        programs = random_programs(seed, spec)
        config = random_configuration(seed, spec)
        if is_statically_deadlock_free(programs):
            result = Explorer(max_states=60_000).explore(config)
            assert not result.has_deadlock, (
                f"seed {seed}: static analysis said deadlock-free but the explorer "
                f"found {len(result.deadlock_states)} deadlock state(s)"
            )
