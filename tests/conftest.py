"""Shared fixtures for the test-suite."""

from __future__ import annotations

import pytest

from repro.config import LEVEL_ORDER, OptimizationLevel, QsConfig
from repro.core.runtime import QsRuntime

ALL_LEVELS = [level.value for level in LEVEL_ORDER]


@pytest.fixture(params=ALL_LEVELS)
def level(request) -> str:
    """Every optimization level the paper evaluates."""
    return request.param


@pytest.fixture
def runtime(level):
    """A fresh runtime per test, parameterised over all optimization levels."""
    rt = QsRuntime(level)
    yield rt
    rt.shutdown()


@pytest.fixture
def qs_runtime():
    """A fully optimized runtime (the common case for functional tests)."""
    rt = QsRuntime(OptimizationLevel.ALL)
    yield rt
    rt.shutdown()


@pytest.fixture
def baseline_runtime():
    """The lock-based (no optimizations) runtime."""
    rt = QsRuntime(QsConfig.none())
    yield rt
    rt.shutdown()
