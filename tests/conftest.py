"""Shared fixtures for the test-suite.

The runtime fixtures are parameterised over *both* execution backends, so
the whole functional suite runs once on OS threads and once under the
deterministic virtual-time simulator.  Tests that genuinely need real
threads (wall-clock timeouts, raw ``threading`` interop, threads spawned
behind the runtime's back) opt out with ``@pytest.mark.threads_only``.
"""

from __future__ import annotations

import pytest

from repro.config import LEVEL_ORDER, OptimizationLevel, QsConfig
from repro.core.runtime import QsRuntime

ALL_LEVELS = [level.value for level in LEVEL_ORDER]
BACKENDS = ("threads", "sim")
#: every execution backend, for suites that exercise the full matrix
#: (the functional fixtures below stay on the in-memory pair: process
#: spawns real workers per test and async rejects some thread-only idioms,
#: so those backends run the parity + dedicated suites instead)
ALL_BACKENDS = ("threads", "sim", "process", "async", "process+async:2:2")


@pytest.fixture(params=ALL_LEVELS)
def level(request) -> str:
    """Every optimization level the paper evaluates."""
    return request.param


@pytest.fixture(params=BACKENDS)
def backend_name(request) -> str:
    """Both execution backends (``threads_only`` tests skip the simulator)."""
    if request.param != "threads" and request.node.get_closest_marker("threads_only"):
        pytest.skip("test requires the threaded backend")
    return request.param


@pytest.fixture
def runtime(level, backend_name):
    """A fresh runtime per test: every optimization level on both backends."""
    rt = QsRuntime(level, backend=backend_name)
    yield rt
    rt.shutdown()


@pytest.fixture
def qs_runtime(backend_name):
    """A fully optimized runtime (the common case for functional tests)."""
    rt = QsRuntime(OptimizationLevel.ALL, backend=backend_name)
    yield rt
    rt.shutdown()


@pytest.fixture
def baseline_runtime(backend_name):
    """The lock-based (no optimizations) runtime."""
    rt = QsRuntime(QsConfig.none(), backend=backend_name)
    yield rt
    rt.shutdown()


@pytest.fixture(params=ALL_BACKENDS)
def any_backend_name(request) -> str:
    """Every execution backend (threads, sim, process, async, hybrid)."""
    return request.param
