"""Golden test for the curated top-level public API.

``repro.__all__`` is the supported surface (see ``docs/api.md``): this
test pins the exact set of names, so adding or removing an export is a
deliberate, reviewed act — update GOLDEN_SURFACE, ``docs/api.md`` and the
package docstring together.  It also checks the hygiene properties the
curation promises: every exported name resolves, the list is duplicate-
free, and star-import brings in exactly the surface.
"""

import repro
from repro.serve import __all__ as serve_all

GOLDEN_SURFACE = [
    # runtime + configuration
    "LEVEL_ORDER",
    "LockBasedRuntime",
    "OptimizationLevel",
    "QsConfig",
    "QsRuntime",
    "lock_based_runtime",
    "qs_runtime",
    # execution backends
    "AsyncBackend",
    "BackendSpec",
    "ExecutionBackend",
    "HybridBackend",
    "ProcessBackend",
    "SimBackend",
    "ThreadedBackend",
    "create_backend",
    # the blocking client surface
    "Handler",
    "ReservedProxy",
    "SeparateObject",
    "SeparateRef",
    "command",
    "query",
    # the awaitable client surface
    "AsyncClient",
    "AsyncReservedProxy",
    "AsyncSeparateBlock",
    # sharding
    "AsyncShardedProxy",
    "ReshardPlan",
    "ShardTopology",
    "ShardedGroup",
    "ShardedProxy",
    # expanded (by-value) types
    "Expanded",
    "ExpandedView",
    "expanded_view",
    "register_expanded",
    # wait conditions, tracing, guarantee checking
    "TraceEvent",
    "Tracer",
    "WaitOutcome",
    "WaitStrategy",
    "assert_guarantees",
    "check_runtime",
    # error types
    "DeadlockError",
    "NotReservedError",
    "QueryFailedError",
    "ReservationError",
    "ScoopError",
    "SeparateAccessError",
    "WaitConditionTimeout",
    # metadata
    "__version__",
]

GOLDEN_SERVE_SURFACE = [
    "AdmissionController",
    "BadRequest",
    "CaseStore",
    "DEFAULT_WATERMARK",
    "Gateway",
    "HttpRequest",
    "LoadReport",
    "MISS",
    "Match",
    "ReadCache",
    "Route",
    "Router",
    "Ticket",
    "case_router",
    "create_case_group",
    "run_load",
    "serve_cases",
]


class TestTopLevelSurface:
    def test_surface_matches_the_golden_list_exactly(self):
        assert sorted(repro.__all__) == sorted(GOLDEN_SURFACE), (
            "repro.__all__ drifted from the golden surface; if the change is "
            "intentional, update GOLDEN_SURFACE, docs/api.md and the repro "
            "package docstring in the same commit")

    def test_no_duplicate_exports(self):
        assert len(repro.__all__) == len(set(repro.__all__))

    def test_every_exported_name_resolves(self):
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, f"{name} does not resolve"

    def test_star_import_brings_in_exactly_the_surface(self):
        namespace = {}
        exec("from repro import *", namespace)  # noqa: S102 - the point of the test
        imported = {name for name in namespace if not name.startswith("__")}
        expected = {name for name in repro.__all__ if not name.startswith("__")}
        assert imported == expected

    def test_error_types_are_scoop_errors(self):
        for name in ("SeparateAccessError", "NotReservedError", "ReservationError",
                     "QueryFailedError", "DeadlockError", "WaitConditionTimeout"):
            assert issubclass(getattr(repro, name), repro.ScoopError)


class TestServeSurface:
    def test_serve_surface_matches_the_golden_list(self):
        assert sorted(serve_all) == sorted(GOLDEN_SERVE_SURFACE)

    def test_every_serve_export_resolves(self):
        import repro.serve as serve

        for name in serve_all:
            assert hasattr(serve, name), f"repro.serve.{name} does not resolve"
