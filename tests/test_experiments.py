"""Tests for the experiment drivers (one per paper table/figure)."""

import pytest

from repro.config import LEVEL_ORDER
from repro.experiments import paper_data, table1, table2, table3, table4, table5
from repro.experiments.eve import collect as eve_collect, eve_config
from repro.experiments.report import format_table, normalize_rows, pivot
from repro.experiments.summary import collect as summary_collect
from repro.workloads.params import TINY_CONCURRENT, TINY_PARALLEL

LEVELS = [level.value for level in LEVEL_ORDER]


class TestReportHelpers:
    def test_format_table_alignment_and_title(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 30, "b": 0.125}], title="T")
        assert text.splitlines()[0] == "T"
        assert "30" in text and "0.125" in text

    def test_format_table_empty(self):
        assert "(no data)" in format_table([])

    def test_pivot(self):
        rows = [{"task": "x", "level": "none", "v": 1}, {"task": "x", "level": "all", "v": 2}]
        wide = pivot(rows, "task", "level", "v")
        assert wide == [{"task": "x", "none": 1, "all": 2}]

    def test_normalize_rows(self):
        assert normalize_rows({"a": 10.0, "b": 5.0}) == {"a": 2.0, "b": 1.0}
        assert normalize_rows({"a": 0.0}) == {"a": 0.0}


class TestTable1:
    @pytest.fixture(scope="class")
    def rows(self):
        return table1.collect(TINY_PARALLEL, tasks=["randmat", "chain"], levels=LEVELS)

    def test_rows_cover_all_levels(self, rows):
        assert {row["level"] for row in rows} == set(LEVELS)

    def test_normalized_table_shape_matches_paper(self, rows):
        """Unoptimized / QoQ-only are an order of magnitude worse than the
        coalescing configurations on the communication-bound tasks."""
        table = {row["task"]: row for row in table1.normalized_table(rows, "comm_ops")}
        randmat = table["randmat"]
        assert randmat["none"] > 10 * randmat["all"]
        assert randmat["qoq"] > 10 * randmat["all"]
        # dynamic and static both eliminate essentially all round-trips; in
        # operation counts they end up within a small constant of each other
        assert randmat["static"] < 3.0
        assert randmat["dynamic"] < 3.0
        # chain involves far less communication, so the gap is smaller —
        # the same qualitative observation as Table 1 (27x vs 345x)
        chain = table["chain"]
        assert chain["none"] < randmat["none"]

    def test_normalized_minimum_is_one(self, rows):
        for row in table1.normalized_table(rows, "comm_ops"):
            numeric = [v for k, v in row.items() if k != "task"]
            assert min(numeric) == pytest.approx(1.0)


class TestTable2:
    def test_collect_and_shape(self):
        rows = table2.collect(TINY_CONCURRENT, tasks=["prodcons", "mutex"], levels=["none", "all"])
        by_key = {(r["task"], r["level"]): r for r in rows}
        assert by_key[("prodcons", "all")]["comm_ops"] < by_key[("prodcons", "none")]["comm_ops"]
        # mutex is insensitive to the optimizations (Table 2's flat row)
        mutex_ratio = by_key[("mutex", "none")]["comm_ops"] / by_key[("mutex", "all")]["comm_ops"]
        assert mutex_ratio < 3


class TestTable3:
    def test_matches_paper(self):
        rows = {r["Language"]: r for r in table3.collect()}
        assert rows["SCOOP/Qs"]["Paradigm"] == "O-O"
        assert rows["Erlang"]["Approach"] == "Actors"
        assert rows["Go"]["Memory"] == "Shared"


class TestTable4:
    def test_table4_layout(self):
        rows = table4.table4_rows()
        # 6 tasks x (5 total rows + 2 compute-only rows)
        assert len(rows) == 42
        first = rows[0]
        assert set(first) >= {"task", "lang", "variant", "1", "32"}

    def test_fig18_and_fig19(self):
        fig18 = table4.fig18_rows()
        assert len(fig18) == 30
        assert all(row["total_s"] >= row["compute_s"] for row in fig18)
        fig19 = table4.fig19_rows()
        series = {row["series"] for row in fig19}
        assert "qs (comp.)" in series and "erlang (comp.)" in series

    def test_geometric_means_ordering(self):
        means = table4.geometric_means()
        assert means["total"]["cxx"] < means["total"]["qs"] < means["total"]["erlang"]
        assert means["compute"]["qs"] <= means["compute"]["go"]


class TestTable5:
    def test_rows_and_means(self):
        rows = {r["task"]: r for r in table5.table5_rows()}
        assert set(rows) == set(paper_data.TABLE5)
        means = table5.geometric_means()
        assert means["cxx"] < means["qs"] < means["haskell"]


class TestSummaryAndEve:
    def test_summary_speedup_direction(self):
        data = summary_collect("tiny", "tiny")
        assert data["speedup_all_vs_none_ops"] > 2.0
        assert data["geomean_comm_ops"]["all"] < data["geomean_comm_ops"]["none"]

    def test_eve_config_matches_section45(self):
        config = eve_config()
        assert config.use_qoq and config.dynamic_sync_coalescing
        assert not config.static_sync_coalescing

    def test_eve_improves_over_baseline(self):
        data = eve_collect("tiny")
        assert data["overall_geomean"] > 1.5
        assert data["parallel_geomean"] > 1.0
        assert data["concurrent_geomean"] > 1.0
