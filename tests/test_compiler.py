"""Tests for the compiler substrate: IR, alias info, the sync-set analysis of
Figs. 12–13, the worked examples of Figs. 14–15, lowering and the IR
interpreter."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.alias import AliasInfo
from repro.compiler.builder import (
    FunctionBuilder,
    fig14_loop,
    fig15_loop,
    pull_loop,
    straightline_queries,
)
from repro.compiler.interp import IRInterpreter
from repro.compiler.ir import SyncInstr
from repro.compiler.lowering import lower_queries
from repro.compiler.pass_manager import PassManager
from repro.compiler.sync_analysis import SyncSetAnalysis, update_sync
from repro.compiler.sync_elision import SyncElisionPass
from repro.core.api import query
from repro.core.region import SeparateObject
from repro.core.runtime import QsRuntime
from repro.errors import CompilerError


class TestIR:
    def test_builder_and_structure(self):
        b = FunctionBuilder("f", entry="B1")
        b.block("B1").sync("h").jump("B2")
        b.block("B2").local("x := h[i]", handler="h").branch("B2", "B3")
        b.block("B3").ret()
        fn = b.build()
        assert fn.reachable_blocks() == ["B1", "B2", "B3"]
        assert fn.predecessors()["B2"] == ["B1", "B2"]
        assert fn.handlers() == {"h"}
        assert fn.count_instructions(SyncInstr) == 1
        assert "sync h" in fn.dump()

    def test_unknown_successor_rejected(self):
        b = FunctionBuilder("f", entry="B1")
        b.block("B1").jump("missing")
        with pytest.raises(CompilerError):
            b.build()

    def test_missing_entry_rejected(self):
        b = FunctionBuilder("f", entry="nope")
        b.block("B1")
        with pytest.raises(CompilerError):
            b.build()

    def test_copy_is_structural(self):
        fn = fig14_loop()
        clone = fn.copy()
        assert clone.dump() == fn.dump()
        clone.block("B2").instructions.clear()
        assert fn.block("B2").instructions


class TestAliasInfo:
    def test_worst_case_everything_aliases(self):
        info = AliasInfo.worst_case()
        assert info.may_alias("a", "b")
        assert info.may_alias("a", "a")

    def test_declared_distinct(self):
        info = AliasInfo()
        info.declare_distinct("a", "b")
        assert not info.may_alias("a", "b")
        assert not info.may_alias("b", "a")
        assert info.may_alias("a", "c")

    def test_no_aliasing_constructor(self):
        info = AliasInfo.no_aliasing(["x", "y", "z"])
        assert not info.may_alias("x", "z")
        assert info.aliases_of("x", ["x", "y", "z"]) == {"x"}

    def test_self_distinct_rejected(self):
        with pytest.raises(ValueError):
            AliasInfo().declare_distinct("a", "a")


class TestUpdateSync:
    def test_sync_adds_async_removes(self):
        b = FunctionBuilder("f").block("entry")
        b.sync("h").async_call("h")
        block = b.raw
        assert update_sync(block, frozenset()) == frozenset()

    def test_query_counts_as_sync(self):
        b = FunctionBuilder("f").block("entry")
        b.query("h")
        assert update_sync(b.raw, frozenset()) == {"h"}

    def test_clobbering_call_clears_set(self):
        b = FunctionBuilder("f").block("entry")
        b.sync("h").call("helper")
        assert update_sync(b.raw, frozenset()) == frozenset()

    def test_readonly_call_preserves_set(self):
        b = FunctionBuilder("f").block("entry")
        b.sync("h").call("helper", readonly=True)
        assert update_sync(b.raw, frozenset()) == {"h"}

    def test_async_on_possible_alias_removes_both(self):
        b = FunctionBuilder("f").block("entry")
        b.sync("h").sync("i").async_call("i")
        # worst case: h may alias i, so the async call invalidates both
        assert update_sync(b.raw, frozenset()) == frozenset()
        distinct = AliasInfo.no_aliasing(["h", "i"])
        assert update_sync(b.raw, frozenset(), distinct, frozenset({"h", "i"})) == {"h"}


class TestPaperExamples:
    def test_fig14_sync_sets_label_edges_with_handler(self):
        sync_sets = SyncSetAnalysis().run(fig14_loop())
        assert sync_sets.edge_label("B1", "B2") == {"h_p"}
        assert sync_sets.edge_label("B2", "B2") == {"h_p"}
        assert sync_sets.edge_label("B2", "B3") == {"h_p"}

    def test_fig14_loop_syncs_removed(self):
        optimized, report = SyncElisionPass().run(fig14_loop())
        # the syncs in the loop body (B2) and the exit (B3) are redundant
        assert report.total_syncs == 3
        assert report.removed_syncs == 2
        assert set(report.removed_by_block) == {"B2", "B3"}
        assert optimized.block("B1").instructions  # the first sync stays
        assert not any(isinstance(i, SyncInstr) for i in optimized.block("B2").instructions)

    def test_fig15_aliasing_blocks_coalescing(self):
        _, report = SyncElisionPass().run(fig15_loop())
        assert report.removed_syncs == 0
        sync_sets = report.sync_sets
        assert sync_sets.edge_label("B2", "B3") == frozenset()

    def test_fig15_with_alias_facts_recovers_coalescing(self):
        aliases = AliasInfo.no_aliasing(["h_p", "i_p"])
        _, report = SyncElisionPass(aliases).run(fig15_loop())
        assert report.removed_syncs == 2

    def test_pessimistic_iteration_agrees_on_paper_examples(self):
        for fn in (fig14_loop(), fig15_loop()):
            optimistic = SyncElisionPass(optimistic=True).run(fn)[1].removed_syncs
            pessimistic = SyncElisionPass(optimistic=False).run(fn)[1].removed_syncs
            assert optimistic == pessimistic


class TestLoweringAndElision:
    def test_lowering_splits_queries(self):
        lowered = lower_queries(straightline_queries("h", 3))
        instrs = lowered.block("B0").instructions
        kinds = [type(i).__name__ for i in instrs]
        assert kinds == ["SyncInstr", "LocalInstr"] * 3

    def test_straightline_all_but_first_sync_removed(self):
        lowered = lower_queries(straightline_queries("h", 10))
        _, report = SyncElisionPass().run(lowered)
        assert report.total_syncs == 10
        assert report.removed_syncs == 9

    def test_pass_manager_composes(self):
        pm = PassManager([SyncElisionPass()])
        result = pm.run(lower_queries(straightline_queries("h", 4)))
        assert result.reports["sync-coalescing"].removed_syncs == 3

    @given(st.lists(st.sampled_from(["sync", "async", "query", "local", "clobber", "readonly"]),
                    min_size=1, max_size=30))
    @settings(max_examples=60, deadline=None)
    def test_property_elision_is_sound_and_monotone(self, ops):
        """The pass never removes a sync that is not provably redundant:
        replaying the optimized block must leave every handler that the
        original left synced still synced (we only ever *drop* redundant
        syncs, never change the final synced state)."""
        b = FunctionBuilder("prop", entry="B0").block("B0")
        for op in ops:
            if op == "sync":
                b.sync("h")
            elif op == "async":
                b.async_call("h")
            elif op == "query":
                b.query("h")
            elif op == "local":
                b.local("work")
            elif op == "clobber":
                b.call("other")
            else:
                b.call("pure", readonly=True)
        b.ret()
        from repro.compiler.ir import Function
        original = Function("prop", [b.raw], "B0")
        optimized, report = SyncElisionPass().run(original)
        assert 0 <= report.removed_syncs <= report.total_syncs
        # final sync-set must be identical for original and optimized block
        out_original = update_sync(original.block("B0"), frozenset())
        out_optimized = update_sync(optimized.block("B0"), frozenset())
        assert out_original == out_optimized


class _Table(SeparateObject):
    def __init__(self, n):
        self.data = np.arange(float(n))

    @query
    def get(self, i):
        return float(self.data[i])


class TestInterpreter:
    @pytest.mark.parametrize("level", ["none", "dynamic", "static", "qoq", "all"])
    def test_pull_loop_executes_and_counts(self, level):
        n = 25
        with QsRuntime(level) as rt:
            ref = rt.new_handler("table").create(_Table, n)
            values = []

            def body(obj, env):
                values.append(obj.data[env["i"]])
                env["i"] += 1

            fn = pull_loop("src", action=body)
            with rt.separate(ref):
                interp = IRInterpreter(rt, {"src": ref})
                interp.execute(fn, trace=["head"] + ["body"] * n + ["exit"], env={"i": 0})
            stats = rt.stats()
        assert values == list(range(n))
        if level in ("none", "qoq"):
            assert stats.sync_roundtrips >= n
        else:
            assert stats.sync_roundtrips <= 2

    def test_unknown_binding_rejected(self, qs_runtime):
        interp = IRInterpreter(qs_runtime, {})
        with pytest.raises(CompilerError):
            interp.execute(straightline_queries("h", 1))

    def test_multiple_successors_require_trace(self, qs_runtime):
        ref = qs_runtime.new_handler("t").create(_Table, 4)
        with qs_runtime.separate(ref):
            interp = IRInterpreter(qs_runtime, {"src": ref})
            with pytest.raises(CompilerError):
                interp.execute(pull_loop("src"))

    def test_controller_drives_control_flow(self, qs_runtime):
        ref = qs_runtime.new_handler("t").create(_Table, 4)
        fn = pull_loop("src", action=lambda obj, env: env.__setitem__("i", env["i"] + 1))
        seen = {"count": 0}

        def controller(block, env):
            if block == "head":
                return "body"
            if block == "body":
                seen["count"] += 1
                return "body" if seen["count"] < 3 else "exit"
            return None

        with qs_runtime.separate(ref):
            IRInterpreter(qs_runtime, {"src": ref}).execute(fn, controller=controller, env={"i": 0})
        assert seen["count"] == 3
