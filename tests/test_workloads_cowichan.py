"""Tests for the Cowichan kernels: sequential references and SCOOP versions."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.workloads.cowichan import reference
from repro.workloads.cowichan.scoop import (
    COWICHAN_TASKS,
    CowichanWorker,
    row_chunks,
    run_cowichan,
)
from repro.workloads.params import ParallelSizes, TINY_PARALLEL, parallel_preset

SIZES = TINY_PARALLEL


class TestReference:
    def test_randmat_deterministic_and_bounded(self):
        a = reference.randmat(10, 12, seed=3)
        b = reference.randmat(10, 12, seed=3)
        np.testing.assert_array_equal(a, b)
        assert a.shape == (10, 12)
        assert a.min() >= 0 and a.max() < reference.RAND_LIMIT
        assert not np.array_equal(a, reference.randmat(10, 12, seed=4))

    def test_thresh_selects_requested_fraction(self):
        matrix = reference.randmat(30, 30, seed=1)
        mask, threshold = reference.thresh(matrix, percent=25)
        kept = mask.sum() / matrix.size * 100
        assert kept >= 25
        assert (matrix[mask] >= threshold).all()
        assert (matrix[~mask] < threshold).all()

    def test_thresh_full_percentage_keeps_everything(self):
        matrix = reference.randmat(5, 5, seed=1)
        mask, threshold = reference.thresh(matrix, percent=100)
        assert mask.all()
        assert threshold == matrix.min()

    def test_thresh_validation(self):
        with pytest.raises(ValueError):
            reference.thresh(np.zeros((2, 2), dtype=int), percent=0)

    def test_winnow_sorted_selection(self):
        matrix = reference.randmat(12, 12, seed=2)
        mask, _ = reference.thresh(matrix, percent=50)
        points = reference.winnow(matrix, mask, 10)
        assert len(points) == 10
        values = [matrix[i, j] for i, j in points]
        assert values == sorted(values)
        assert all(mask[i, j] for i, j in points)

    def test_winnow_requests_more_than_available(self):
        matrix = np.array([[5, 1], [2, 9]])
        mask = np.array([[True, False], [False, True]])
        points = reference.winnow(matrix, mask, 10)
        assert points == [(0, 0), (1, 1)]

    def test_winnow_empty_mask(self):
        matrix = np.zeros((3, 3), dtype=int)
        assert reference.winnow(matrix, np.zeros((3, 3), dtype=bool), 5) == []

    def test_outer_diagonal_dominance_and_symmetry(self):
        points = [(0, 0), (3, 4), (6, 8)]
        omat, vec = reference.outer(points)
        assert omat.shape == (3, 3)
        np.testing.assert_allclose(vec, [0.0, 5.0, 10.0])
        off_diag = omat - np.diag(np.diag(omat))
        np.testing.assert_allclose(off_diag, off_diag.T)
        for i in range(3):
            assert omat[i, i] >= off_diag[i].max()

    def test_product_matches_numpy(self):
        rng = np.random.default_rng(0)
        matrix = rng.random((6, 6))
        vector = rng.random(6)
        np.testing.assert_allclose(reference.product(matrix, vector), matrix @ vector)

    def test_product_shape_validation(self):
        with pytest.raises(ValueError):
            reference.product(np.zeros((2, 3)), np.zeros(2))

    def test_chain_composes_kernels(self):
        result = reference.chain(nr=12, percent=30, nw=8, seed=5)
        matrix = reference.randmat(12, 12, 5)
        mask, _ = reference.thresh(matrix, 30)
        points = reference.winnow(matrix, mask, 8)
        omat, vec = reference.outer(points)
        np.testing.assert_allclose(result, reference.product(omat, vec))

    @given(st.integers(min_value=1, max_value=12), st.integers(min_value=1, max_value=12),
           st.integers(min_value=0, max_value=1000))
    @settings(max_examples=20, deadline=None)
    def test_randmat_property_shape_and_determinism(self, nr, nc, seed):
        a = reference.randmat(nr, nc, seed)
        assert a.shape == (nr, nc)
        np.testing.assert_array_equal(a, reference.randmat(nr, nc, seed))

    @given(st.integers(min_value=2, max_value=10), st.integers(min_value=1, max_value=99))
    @settings(max_examples=20, deadline=None)
    def test_thresh_property_mask_consistent_with_threshold(self, n, percent):
        matrix = reference.randmat(n, n, seed=7)
        mask, threshold = reference.thresh(matrix, percent)
        np.testing.assert_array_equal(mask, matrix >= threshold)


class TestRowChunks:
    def test_partition_covers_everything_without_overlap(self):
        chunks = row_chunks(10, 3)
        assert chunks == [(0, 4), (4, 3), (7, 3)]
        assert sum(c for _, c in chunks) == 10

    def test_more_workers_than_rows(self):
        chunks = row_chunks(2, 4)
        assert sum(c for _, c in chunks) == 2
        assert len(chunks) == 4

    def test_invalid_parts(self):
        with pytest.raises(ValueError):
            row_chunks(5, 0)

    @given(st.integers(min_value=0, max_value=200), st.integers(min_value=1, max_value=16))
    def test_property_partition(self, total, parts):
        chunks = row_chunks(total, parts)
        assert len(chunks) == parts
        assert sum(count for _, count in chunks) == total
        position = 0
        for start, count in chunks:
            assert start == position
            position += count


class TestScoopImplementations:
    @pytest.mark.parametrize("task", sorted(COWICHAN_TASKS))
    def test_matches_reference_fully_optimized(self, task):
        run_cowichan(task, "all", SIZES, verify=True)

    @pytest.mark.parametrize("task", ["randmat", "product", "chain"])
    def test_matches_reference_unoptimized(self, task):
        run_cowichan(task, "none", SIZES, verify=True)

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            run_cowichan("sorting", "all", SIZES)

    def test_communication_shape_none_vs_all(self):
        noisy = run_cowichan("randmat", "none", SIZES)
        quiet = run_cowichan("randmat", "all", SIZES)
        assert noisy.sync_roundtrips >= 10 * max(1, quiet.sync_roundtrips)
        assert noisy.communication_ops > quiet.communication_ops

    def test_chain_has_less_communication_than_randmat(self):
        chain = run_cowichan("chain", "none", SIZES)
        randmat = run_cowichan("randmat", "none", SIZES)
        assert chain.communication_ops < randmat.communication_ops

    def test_worker_count_respected(self):
        sizes = ParallelSizes(nr=12, percent=25, nw=12, workers=3)
        result = run_cowichan("randmat", "all", sizes, verify=True)
        assert result.workers == 3

    def test_single_worker_still_correct(self):
        sizes = ParallelSizes(nr=10, percent=25, nw=10, workers=1)
        run_cowichan("thresh", "all", sizes, verify=True)

    def test_presets_available(self):
        assert parallel_preset("tiny").nr <= parallel_preset("small").nr <= parallel_preset("paper").nr
        with pytest.raises(ValueError):
            parallel_preset("huge")

    def test_worker_histogram_consistency(self):
        worker = CowichanWorker()
        worker.matrix_rows[0] = np.array([1, 2, 2, 3])
        hist = worker.histogram(10)
        assert hist[2] == 2 and hist[1] == 1 and hist[3] == 1
