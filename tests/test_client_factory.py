"""The unified ``runtime.client(...)`` / ``runtime.aclient(...)`` factory pair.

The four historical spellings (``spawn_client``, ``spawn_async_client``,
``async_client``, ``separate_async``) are deprecated aliases: each must
emit exactly one ``DeprecationWarning`` and then behave bit-identically to
the new spelling (same handle types, same results, same counters).
"""

import warnings

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.core.client import Client


class Box(SeparateObject):
    def __init__(self):
        self.items = []

    @command
    def add(self, item):
        self.items.append(item)

    @query
    def read(self):
        return list(self.items)


def _collect_deprecations(recorded):
    return [w for w in recorded if issubclass(w.category, DeprecationWarning)]


class TestClientFactory:
    def test_client_spawns_a_thread_client_for_plain_functions(self):
        with QsRuntime() as rt:
            box = rt.new_handler("box").create(Box)

            def worker(n):
                with rt.separate(box) as b:
                    b.add(n)

            handles = [rt.client(worker, i, name=f"w-{i}") for i in range(3)]
            rt.join_clients()
            for handle in handles:
                assert hasattr(handle, "join")
            with rt.separate(box) as b:
                assert sorted(b.read()) == [0, 1, 2]

    def test_client_without_arguments_is_the_calling_threads_client(self):
        with QsRuntime() as rt:
            me = rt.client()
            assert isinstance(me, Client)
            assert me is rt.current_client()

    def test_client_dispatches_coroutine_functions_to_the_loop(self):
        with QsRuntime(backend="async") as rt:
            box = rt.new_handler("box").create(Box)

            async def worker(n):
                async with rt.aclient().separate(box) as b:
                    await b.add(n)

            for i in range(3):
                rt.client(worker, i, name=f"aw-{i}")
            rt.join_clients()
            with rt.separate(box) as b:
                assert sorted(b.read()) == [0, 1, 2]

    def test_aclient_spawns_coroutine_clients(self):
        with QsRuntime(backend="async") as rt:
            box = rt.new_handler("box").create(Box)

            async def worker():
                async with rt.aclient().separate(box) as b:
                    await b.add("from-coroutine")
                    assert await b.read() == ["from-coroutine"]

            rt.aclient(worker)
            rt.join_clients()

    def test_aclient_rejects_plain_functions(self):
        with QsRuntime(backend="async") as rt:
            with pytest.raises(TypeError, match="not a coroutine function"):
                rt.aclient(lambda: None)

    def test_new_spellings_emit_no_deprecation_warning(self):
        with QsRuntime() as rt:
            box = rt.new_handler("box").create(Box)
            with warnings.catch_warnings(record=True) as recorded:
                warnings.simplefilter("always")
                rt.client(lambda: None, name="noop")
                rt.client()
                with rt.separate(box) as b:
                    b.add(1)
            rt.join_clients()
            assert _collect_deprecations(recorded) == []


class TestDeprecatedAliases:
    def test_spawn_client_warns_once_and_matches_client(self):
        with QsRuntime() as rt:
            box = rt.new_handler("box").create(Box)

            def worker(n):
                with rt.separate(box) as b:
                    b.add(n)

            with warnings.catch_warnings(record=True) as recorded:
                warnings.simplefilter("always")
                old_handle = rt.spawn_client(worker, 1, name="old")
            deprecations = _collect_deprecations(recorded)
            assert len(deprecations) == 1
            assert "spawn_client" in str(deprecations[0].message)
            assert "runtime.client" in str(deprecations[0].message)
            # the warning points at this test, not at runtime internals
            assert deprecations[0].filename == __file__

            new_handle = rt.client(worker, 2, name="new")
            assert type(old_handle) is type(new_handle)
            rt.join_clients()
            with rt.separate(box) as b:
                assert sorted(b.read()) == [1, 2]

    def test_spawn_async_client_warns_and_matches_aclient(self):
        with QsRuntime(backend="async") as rt:
            box = rt.new_handler("box").create(Box)

            async def worker(n):
                async with rt.aclient().separate(box) as b:
                    await b.add(n)

            with warnings.catch_warnings(record=True) as recorded:
                warnings.simplefilter("always")
                old_handle = rt.spawn_async_client(worker, 1, name="old")
            deprecations = _collect_deprecations(recorded)
            assert len(deprecations) == 1
            assert "spawn_async_client" in str(deprecations[0].message)
            new_handle = rt.aclient(worker, 2, name="new")
            assert type(old_handle) is type(new_handle)
            rt.join_clients()
            with rt.separate(box) as b:
                assert sorted(b.read()) == [1, 2]

    def test_async_client_and_separate_async_warn_and_delegate(self):
        with QsRuntime(backend="async") as rt:
            box = rt.new_handler("box").create(Box)
            seen = {}

            async def worker():
                with warnings.catch_warnings(record=True) as recorded:
                    warnings.simplefilter("always")
                    old = rt.async_client()
                    block = rt.separate_async(box)
                messages = [str(w.message) for w in _collect_deprecations(recorded)]
                seen["messages"] = messages
                seen["same_client"] = old is rt.aclient()
                async with block as b:
                    await b.add("x")
                    seen["value"] = await b.read()

            rt.aclient(worker)
            rt.join_clients()
            assert seen["same_client"] is True
            assert seen["value"] == ["x"]
            assert len(seen["messages"]) == 2
            assert any("async_client" in m for m in seen["messages"])
            assert any("separate_async" in m for m in seen["messages"])

    def test_aliases_preserve_identical_counters(self):
        # bit-identical behaviour: the same workload through the old and the
        # new spelling produces the same counter deltas (sim backend, so the
        # schedule — and with it every batching counter — is deterministic)
        def run(spawn_attr):
            with QsRuntime(backend="sim") as rt:
                box = rt.new_handler("box").create(Box)

                def worker(n):
                    for i in range(4):
                        with rt.separate(box) as b:
                            b.add(n * 10 + i)
                            b.read()

                with warnings.catch_warnings():
                    warnings.simplefilter("ignore", DeprecationWarning)
                    for n in range(3):
                        getattr(rt, spawn_attr)(worker, n, name=f"c-{n}")
                rt.join_clients()
                return {k: v for k, v in rt.stats().as_dict().items() if v}

        assert run("spawn_client") == run("client")
