"""Tests for separate objects, handler ownership and race detection."""

import threading

import pytest

from repro.core.api import command, query
from repro.core.region import HandlerOwner, SeparateObject, SeparateRef
from repro.core.runtime import QsRuntime
from repro.errors import SeparateAccessError


class Cell(SeparateObject):
    def __init__(self, value=0):
        self.value = value

    @command
    def set(self, value):
        self.value = value

    @query
    def get(self):
        return self.value


class TestSeparateObject:
    def test_unbound_object_behaves_normally(self):
        cell = Cell(5)
        assert cell.value == 5
        cell.value = 7
        assert cell.get() == 7

    def test_bound_object_rejects_foreign_thread(self):
        owner = HandlerOwner("h")
        owner.bind_thread(threading.Thread())  # a thread that is not us
        cell = Cell(1)
        cell._scoop_bind(owner)
        with pytest.raises(SeparateAccessError):
            _ = cell.value
        with pytest.raises(SeparateAccessError):
            cell.value = 3

    def test_owner_thread_allowed(self):
        owner = HandlerOwner("h")
        owner.bind_thread(threading.current_thread())
        cell = Cell(1)
        cell._scoop_bind(owner)
        assert cell.value == 1

    def test_sync_grant_allows_temporary_access(self):
        owner = HandlerOwner("h")
        owner.bind_thread(threading.Thread())
        cell = Cell(1)
        cell._scoop_bind(owner)
        owner.grant_sync_access(threading.current_thread())
        assert cell.value == 1
        owner.revoke_sync_access(threading.current_thread())
        with pytest.raises(SeparateAccessError):
            _ = cell.value

    def test_revoke_only_for_matching_thread(self):
        owner = HandlerOwner("h")
        me = threading.current_thread()
        owner.grant_sync_access(me)
        owner.revoke_sync_access(threading.Thread())  # someone else revoking
        assert owner.thread_allowed(me)


class TestSeparateRef:
    def test_ref_blocks_direct_attribute_access(self):
        with QsRuntime("all") as rt:
            ref = rt.new_handler("cell").create(Cell, 3)
            with pytest.raises(SeparateAccessError):
                _ = ref.value
            assert isinstance(ref, SeparateRef)
            assert "Cell" in repr(ref)

    def test_raw_object_is_protected_outside_blocks(self):
        with QsRuntime("all") as rt:
            ref = rt.new_handler("cell").create(Cell, 3)
            raw = ref._raw()
            with pytest.raises(SeparateAccessError):
                _ = raw.value


class TestRaceDetectionEndToEnd:
    def test_direct_access_during_concurrent_use_raises(self, qs_runtime):
        ref = qs_runtime.new_handler("cell").create(Cell, 0)
        raw = ref._raw()
        with qs_runtime.separate(ref) as cell:
            cell.set(1)
        # outside any sync window, the main thread may not touch the object
        with pytest.raises(SeparateAccessError):
            raw.value = 99

    def test_query_grants_access_only_within_window(self, qs_runtime):
        ref = qs_runtime.new_handler("cell").create(Cell, 0)
        raw = ref._raw()
        with qs_runtime.separate(ref) as cell:
            assert cell.get() == 0
            if qs_runtime.config.client_executed_queries:
                # after a query the handler is parked on our queue: reading is
                # legal (this is what client-executed queries rely on) ...
                assert raw.value == 0
                # ... but logging another command revokes the window
                cell.set(5)
                with pytest.raises(SeparateAccessError):
                    _ = raw.value
