"""Hybrid-backend specifics: coroutine fan-in over real process workers.

Backend *parity* (same programs, same observations, same counters as the
other backends with thread clients) lives in ``tests/test_backends.py``;
this file covers what the ``process+async`` composite adds on top: the
awaitable client surface running against process-hosted handlers, counter
parity between client styles *and* against the plain process backend
(including the wire counters, which must not depend on who drives the
socket), placement reporting (``worker:<pid>+loop:<i>``), query failure
propagation through awaited result boxes, mixed client styles, fan-in
scale, and the composite's guard rails.
"""

from __future__ import annotations

import re

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.backends import HybridBackend
from repro.errors import QueryFailedError, ScoopError

#: counters whose values do not depend on the client style or on which
#: side of the socket the event loop lives
PARITY_COUNTERS = ("async_calls", "queries", "sync_roundtrips", "syncs_elided",
                   "reservations", "multi_reservations", "qoq_enqueues", "calls_executed")

#: wire counters that must match the plain process backend on the same
#: workload: the coroutine transport shares FrameBuffers with the blocking
#: one, so coalescing behaviour is identical by construction
WIRE_COUNTERS = ("pq_enqueues", "wire_frames_coalesced")

HYBRID = "process+async:2:2"


class Account(SeparateObject):
    def __init__(self, balance: int) -> None:
        self.balance = balance

    @command
    def credit(self, amount: int) -> None:
        self.balance += amount

    @command
    def debit(self, amount: int) -> None:
        self.balance -= amount

    @query
    def read(self) -> int:
        return self.balance

    @query
    def fail(self) -> None:
        raise ValueError("deliberate query failure")


def _transfer_amount(seed: int, i: int) -> int:
    return 1 + (seed * 7 + i) % 20


def _bank_with_thread_clients(backend: str, clients: int, transfers: int,
                              counters: tuple = PARITY_COUNTERS) -> dict:
    with QsRuntime("all", backend=backend) as rt:
        alice = rt.new_handler("alice").create(Account, 1_000)
        bob = rt.new_handler("bob").create(Account, 1_000)

        def transferrer(seed: int) -> None:
            for i in range(transfers):
                amount = _transfer_amount(seed, i)
                with rt.separate(alice, bob) as (a, b):
                    a.debit(amount)
                    b.credit(amount)

        for i in range(clients):
            rt.spawn_client(transferrer, i, name=f"t-{i}")
        rt.join_clients()
        with rt.separate(alice, bob) as (a, b):
            final = (a.read(), b.read())
        stats = rt.stats()
        observed = {name: stats[name] for name in counters}
    return {"final": final, "counters": observed}


def _bank_with_coroutine_clients(backend: str, clients: int, transfers: int,
                                 counters: tuple = PARITY_COUNTERS) -> dict:
    with QsRuntime("all", backend=backend) as rt:
        alice = rt.new_handler("alice").create(Account, 1_000)
        bob = rt.new_handler("bob").create(Account, 1_000)

        async def transferrer(seed: int) -> None:
            for i in range(transfers):
                amount = _transfer_amount(seed, i)
                async with rt.separate_async(alice, bob) as (a, b):
                    await a.debit(amount)
                    await b.credit(amount)

        for i in range(clients):
            rt.spawn_async_client(transferrer, i, name=f"t-{i}")
        rt.join_clients()
        with rt.separate(alice, bob) as (a, b):
            final = (a.read(), b.read())
        stats = rt.stats()
        observed = {name: stats[name] for name in counters}
    return {"final": final, "counters": observed}


# ----------------------------------------------------------------------------
# the awaitable client API against process-hosted handlers
# ----------------------------------------------------------------------------
class TestAwaitableApi:
    def test_commands_and_queries(self):
        with QsRuntime("all", backend=HYBRID) as rt:
            ref = rt.new_handler("acct").create(Account, 100)
            seen = []

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    await acc.credit(42)
                    seen.append(await acc.read())
                    seen.append(await acc.ask("read"))
                    await acc.send("debit", 10)
                    seen.append(await acc.read())

            rt.spawn_async_client(client)
            rt.join_clients()
            assert seen == [142, 142, 132]

    def test_sync_coalescing_applies_to_coroutine_clients(self):
        with QsRuntime("all", backend=HYBRID) as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    await acc.credit(1)
                    assert (await acc.read(), await acc.read(), await acc.read()) == (1, 1, 1)

            rt.spawn_async_client(client)
            rt.join_clients()
            stats = rt.stats()
            assert stats["sync_roundtrips"] == 1
            assert stats["syncs_elided"] == 2

    def test_query_failure_propagates_through_await(self):
        caught = []
        with QsRuntime("all", backend=HYBRID) as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    try:
                        await acc.fail()
                    except ValueError as exc:
                        caught.append(str(exc))
                    # the block (and the handler process) survive the failure
                    await acc.credit(3)
                    caught.append(await acc.read())

            rt.spawn_async_client(client)
            rt.join_clients()
        assert caught == ["deliberate query failure", 3]

    def test_packaged_query_failure_under_qoq_level(self):
        # client_executed_queries is off at the qoq level, so the query is
        # packaged, runs in the worker process, and the error crosses back
        # through the awaited result box
        caught = []
        with QsRuntime("qoq", backend=HYBRID) as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    with pytest.raises(QueryFailedError):
                        await acc.fail()
                    caught.append(await acc.read())

            rt.spawn_async_client(client)
            rt.join_clients()
        assert caught == [0]

    def test_thread_and_coroutine_clients_coexist(self):
        with QsRuntime("all", backend=HYBRID) as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            def thread_client() -> None:
                for _ in range(10):
                    with rt.separate(ref) as acc:
                        acc.credit(1)

            async def coro_client() -> None:
                for _ in range(10):
                    async with rt.separate_async(ref) as acc:
                        await acc.credit(1)

            for i in range(3):
                rt.spawn_client(thread_client, name=f"thread-{i}")
                rt.spawn_async_client(coro_client, name=f"coro-{i}")
            rt.join_clients()
            with rt.separate(ref) as acc:
                assert acc.read() == 60


# ----------------------------------------------------------------------------
# client-style and backend parity, down to the wire counters
# ----------------------------------------------------------------------------
class TestParity:
    def test_coroutine_clients_match_thread_clients_counters(self):
        reference = _bank_with_thread_clients("threads", clients=3, transfers=10)
        hybrid_threads = _bank_with_thread_clients(HYBRID, clients=3, transfers=10)
        hybrid_coros = _bank_with_coroutine_clients(HYBRID, clients=3, transfers=10)
        assert hybrid_threads == reference, (
            "thread clients must not depend on the backend")
        assert hybrid_coros == reference, (
            "coroutine clients must produce identical results and counters")

    def test_wire_counters_match_the_plain_process_backend(self):
        # the coroutine transport shares its buffering core (and the
        # coalescing threshold) with the blocking one, so the *wire*
        # counters must be identical too — not just the protocol counters
        counters = PARITY_COUNTERS + WIRE_COUNTERS
        process = _bank_with_thread_clients("process:2", clients=3, transfers=10,
                                            counters=counters)
        hybrid = _bank_with_coroutine_clients(HYBRID, clients=3, transfers=10,
                                              counters=counters)
        assert hybrid == process, (
            "who drives the socket (coroutine reader vs blocking client "
            "thread) must not change what crosses the wire")

    def test_wire_counters_identical_across_codecs(self):
        counters = PARITY_COUNTERS + WIRE_COUNTERS
        reference = _bank_with_coroutine_clients("process+async:2:2:pickle",
                                                 clients=2, transfers=8,
                                                 counters=counters)
        for codec in ("json", "bin"):
            result = _bank_with_coroutine_clients(f"process+async:2:2:{codec}",
                                                  clients=2, transfers=8,
                                                  counters=counters)
            assert result == reference, f"codec {codec!r} changed the accounting"


# ----------------------------------------------------------------------------
# placement: worker pid + pinned event loop
# ----------------------------------------------------------------------------
class TestPlacement:
    def test_shard_replicas_report_worker_and_loop(self):
        with QsRuntime("all", backend="process+async:2:2") as rt:
            group = rt.sharded("accts", shards=4).create(Account, 0)
            hosts = dict(group.topology.placement)
            assert len(hosts) == 4
            for host in hosts.values():
                assert re.fullmatch(r"worker:\d+\+loop:\d+", host), host
            # replicas round-robin over both loops and both workers
            loops = sorted(host.rsplit("+", 1)[1] for host in hosts.values())
            assert loops == ["loop:0", "loop:0", "loop:1", "loop:1"]
            workers = {host.split("+", 1)[0] for host in hosts.values()}
            assert len(workers) == 2

    def test_plain_handlers_report_an_unpinned_loop(self):
        with QsRuntime("all", backend=HYBRID) as rt:
            rt.new_handler("acct").create(Account, 0)
            placement = rt.backend.describe_placement(["acct"])
            assert re.fullmatch(r"worker:\d+\+loop:\*", placement["acct"])


# ----------------------------------------------------------------------------
# fan-in scale: many coroutine clients over a small worker pool
# ----------------------------------------------------------------------------
def test_five_hundred_coroutine_clients():
    n = 500
    with QsRuntime("all", backend="process+async:2:2") as rt:
        refs = [rt.new_handler(f"svc-{i}").create(Account, 0) for i in range(4)]

        async def client(i: int) -> None:
            ref = refs[i % len(refs)]
            async with rt.separate_async(ref) as acc:
                await acc.credit(1)
                assert await acc.read() >= 1

        for i in range(n):
            rt.spawn_async_client(client, i, name=f"c-{i}")
        rt.join_clients()
        totals = []
        for ref in refs:
            with rt.separate(ref) as acc:
                totals.append(acc.read())
        assert sum(totals) == n


# ----------------------------------------------------------------------------
# guard rails
# ----------------------------------------------------------------------------
class TestGuardRails:
    def test_direct_constructor_and_validation(self):
        backend = HybridBackend(processes=2, loops=2)
        assert backend.nloops == 2
        with QsRuntime("all", backend=backend) as rt:
            ref = rt.new_handler("acct").create(Account, 5)
            with rt.separate(ref) as acc:
                acc.credit(5)
                assert acc.read() == 10

    def test_spawning_after_shutdown_is_rejected(self):
        rt = QsRuntime("all", backend=HYBRID)
        rt.shutdown()
        with pytest.raises(ScoopError, match="shut down"):
            rt.backend.spawn_task(lambda: None, "late")

    def test_backends_cannot_be_attached_twice(self):
        backend = HybridBackend(processes=1, loops=1)
        with QsRuntime("all", backend=backend):
            pass
        with pytest.raises(ScoopError, match="twice"):
            QsRuntime("all", backend=backend)

    def test_blocking_invoke_on_the_coroutine_queue_is_rejected(self):
        # reaching the blocking invoke() from a loop thread would deadlock
        # the event loop; the coroutine queue refuses it outright
        from repro.backends.hybrid import AsyncProcessPrivateQueue

        with pytest.raises(ScoopError, match="invoke_async"):
            AsyncProcessPrivateQueue.invoke(None, None, None, (), {})

    def test_env_var_selects_the_hybrid_backend(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process+async:2:2")
        with QsRuntime("all") as rt:
            assert rt.backend.name == "process+async"
            assert rt.backend.nloops == 2
