"""End-to-end tests of the threaded runtime: handlers, separate blocks, calls,
queries, multi-reservations, nesting, error handling — across every
optimization level (the ``runtime`` fixture is parameterised)."""


import pytest

from repro.core.api import command, query
from repro.core.baseline import LockBasedRuntime
from repro.core.region import SeparateObject
from repro.core.runtime import QsRuntime, lock_based_runtime, qs_runtime
from repro.errors import (
    NotReservedError,
    QueryFailedError,
    ReservationError,
    RuntimeShutdownError,
    ScoopError,
)


class Counter(SeparateObject):
    def __init__(self, value=0):
        self.value = value

    @command
    def increment(self, by=1):
        self.value += by

    @command
    def explode(self):
        raise RuntimeError("async failure")

    @query
    def read(self):
        return self.value

    @query
    def fail(self):
        raise ValueError("query failure")

    def unmarked(self):
        # unmarked methods default to query semantics
        return self.value * 2


class TestBasicOperation:
    def test_commands_and_queries(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        with runtime.separate(ref) as c:
            c.increment()
            c.increment(4)
            assert c.read() == 5

    def test_commands_apply_in_program_order(self, runtime):
        ref = runtime.new_handler("counter").create(Counter, 1)
        with runtime.separate(ref) as c:
            c.increment(10)      # 11
            c.increment(100)     # 111
            assert c.read() == 111

    def test_unmarked_method_defaults_to_query(self, runtime):
        ref = runtime.new_handler("counter").create(Counter, 21)
        with runtime.separate(ref) as c:
            assert c.unmarked() == 42

    def test_explicit_send_and_ask(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        with runtime.separate(ref) as c:
            c.send("increment", 7)
            assert c.ask("read") == 7

    def test_apply_and_compute_function_forms(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        with runtime.separate(ref) as c:
            c.apply(lambda obj, amount: obj.increment(amount), 5)
            assert c.compute(lambda obj: obj.value) == 5

    def test_results_visible_across_blocks(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        with runtime.separate(ref) as c:
            c.increment(3)
        with runtime.separate(ref) as c:
            assert c.read() == 3

    def test_query_exception_propagates_to_client(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        with runtime.separate(ref) as c:
            with pytest.raises((QueryFailedError, ValueError)):
                c.fail()

    def test_async_exception_surfaces_at_shutdown(self):
        rt = QsRuntime("all")
        ref = rt.new_handler("counter").create(Counter)
        with rt.separate(ref) as c:
            c.explode()
        with pytest.raises(ScoopError):
            rt.shutdown()

    def test_proxy_attribute_assignment_rejected(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        with runtime.separate(ref) as c:
            with pytest.raises(AttributeError):
                c.value = 5


class TestReservations:
    def test_call_without_reservation_rejected(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        client = runtime.current_client()
        with pytest.raises(NotReservedError):
            client.call(ref, "increment")

    def test_separate_requires_refs(self, runtime):
        with pytest.raises(ReservationError):
            with runtime.separate():
                pass

    def test_separate_rejects_non_refs(self, runtime):
        with pytest.raises(ReservationError):
            with runtime.separate(Counter()):
                pass

    def test_nested_blocks_on_same_handler(self, runtime):
        ref = runtime.new_handler("counter").create(Counter)
        if not runtime.config.use_qoq:
            pytest.skip("nested reservation of the same handler self-deadlocks under the lock-based protocol")
        with runtime.separate(ref) as outer:
            outer.increment(1)
            with runtime.separate(ref) as inner:
                inner.increment(10)
            outer.increment(100)
            # all increments from this client are eventually applied
        with runtime.separate(ref) as c:
            assert c.read() == 111

    def test_multi_reservation_returns_tuple(self, runtime):
        a = runtime.new_handler("a").create(Counter, 1)
        b = runtime.new_handler("b").create(Counter, 2)
        with runtime.separate(a, b) as (pa, pb):
            assert pa.read() == 1
            assert pb.read() == 2
            assert runtime.stats().multi_reservations >= 1

    def test_duplicate_handler_in_multi_reservation_collapses(self, runtime):
        a = runtime.new_handler("a").create(Counter, 1)
        b = a.handler.create(Counter, 2)  # second object on the same handler
        with runtime.separate(a, b) as (pa, pb):
            assert pa.read() == 1
            assert pb.read() == 2

    def test_multi_reservation_atomicity(self, qs_runtime):
        """Fig. 5: observers reserving both handlers always see equal colours."""
        x = qs_runtime.new_handler("x").create(Counter, 0)
        y = qs_runtime.new_handler("y").create(Counter, 0)
        inconsistencies = []

        def painter(colour):
            for _ in range(50):
                with qs_runtime.separate(x, y) as (px, py):
                    px.send("increment", colour - px.read())   # set to colour
                    py.send("increment", colour - py.read())

        def observer():
            for _ in range(50):
                with qs_runtime.separate(x, y) as (px, py):
                    if px.read() != py.read():
                        inconsistencies.append((px.read(), py.read()))

        threads = [
            qs_runtime.spawn_client(painter, 1, name="red"),
            qs_runtime.spawn_client(painter, 2, name="blue"),
            qs_runtime.spawn_client(observer, name="observer"),
        ]
        for t in threads:
            t.join()
        assert inconsistencies == []


class TestRuntimeLifecycle:
    def test_context_manager_shuts_down(self):
        with QsRuntime("all") as rt:
            ref = rt.new_handler("c").create(Counter)
            with rt.separate(ref) as c:
                c.increment()
        assert all(not h.alive for h in rt.handlers)

    def test_operations_after_shutdown_rejected(self):
        rt = QsRuntime("all")
        rt.shutdown()
        with pytest.raises(RuntimeShutdownError):
            rt.new_handler("late")

    def test_handler_names_unique(self, qs_runtime):
        qs_runtime.new_handler("dup")
        with pytest.raises(ScoopError):
            qs_runtime.new_handler("dup")

    def test_handler_get_or_create(self, qs_runtime):
        h1 = qs_runtime.handler("worker")
        h2 = qs_runtime.handler("worker")
        assert h1 is h2

    def test_new_handlers_bulk(self, qs_runtime):
        handlers = qs_runtime.new_handlers(3, prefix="w")
        assert [h.name for h in handlers] == ["w-0", "w-1", "w-2"]

    def test_spawn_client_error_collected(self):
        rt = QsRuntime("all")

        def bad():
            raise RuntimeError("client blew up")

        rt.spawn_client(bad).join()
        with pytest.raises(ScoopError):
            rt.shutdown()

    def test_stats_reset(self, qs_runtime):
        ref = qs_runtime.new_handler("c").create(Counter)
        with qs_runtime.separate(ref) as c:
            c.increment()
        assert qs_runtime.stats().async_calls >= 1
        qs_runtime.reset_stats()
        assert qs_runtime.stats().async_calls == 0

    def test_constructors(self):
        assert qs_runtime("dynamic").config.dynamic_sync_coalescing
        assert not lock_based_runtime().config.use_qoq
        assert isinstance(LockBasedRuntime(), QsRuntime)


class TestContention:
    def test_many_clients_one_handler_total_is_exact(self, runtime):
        """The mutex pattern: no lost updates under any optimization level."""
        ref = runtime.new_handler("shared").create(Counter)
        clients, per_client = 4, 25

        def hammer():
            for _ in range(per_client):
                with runtime.separate(ref) as c:
                    c.increment()

        threads = [runtime.spawn_client(hammer, name=f"hammer-{i}") for i in range(clients)]
        for t in threads:
            t.join()
        with runtime.separate(ref) as c:
            assert c.read() == clients * per_client

    def test_block_isolation_read_modify_write(self, runtime):
        """Pre/postcondition reasoning: read-modify-write inside one block is atomic."""
        ref = runtime.new_handler("shared").create(Counter)
        clients, per_client = 4, 10

        def double_then_add():
            for _ in range(per_client):
                with runtime.separate(ref) as c:
                    before = c.read()
                    c.increment(1)
                    after = c.read()
                    assert after == before + 1   # nobody interleaved

        threads = [runtime.spawn_client(double_then_add, name=f"rmw-{i}") for i in range(clients)]
        for t in threads:
            t.join()
        with runtime.separate(ref) as c:
            assert c.read() == clients * per_client

    def test_lock_based_mode_counts_lock_traffic(self, baseline_runtime):
        ref = baseline_runtime.new_handler("shared").create(Counter)
        with baseline_runtime.separate(ref) as c:
            c.increment()
        stats = baseline_runtime.stats()
        assert stats.lock_acquisitions >= 1
        assert stats.qoq_enqueues >= 1
