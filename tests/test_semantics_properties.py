"""Property-based tests of the semantics over randomly generated programs."""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.errors import DeadlockError
from repro.semantics.explorer import Explorer, check_handler_guarantee
from repro.semantics.generator import (
    ProgramSpec,
    random_configuration,
    random_program,
    random_programs,
)
from repro.semantics.syntax import Call, Query, Separate, Seq, Skip, Stmt
from repro.semantics.waitgraph import is_statically_deadlock_free

#: a deliberately small population: the explorer is exponential in program size
SMALL_SPEC = ProgramSpec(
    handlers=("x", "y"),
    clients=("c1", "c2"),
    max_blocks_per_client=1,
    max_calls_per_block=2,
    max_nesting=2,
)

#: queries never issued under nested reservations: deadlock freedom is expected
SAFE_SPEC = ProgramSpec(
    handlers=("x", "y"),
    clients=("c1", "c2"),
    max_blocks_per_client=2,
    max_calls_per_block=2,
    max_nesting=1,
)

SEEDS = st.integers(min_value=0, max_value=2**32 - 1)


def _well_formed(stmt: Stmt, reserved=frozenset()) -> bool:
    """Every call/query targets a handler reserved by an enclosing block."""
    if isinstance(stmt, Seq):
        return _well_formed(stmt.first, reserved) and _well_formed(stmt.rest, reserved)
    if isinstance(stmt, Separate):
        return _well_formed(stmt.body, reserved | set(stmt.targets))
    if isinstance(stmt, (Call, Query)):
        return stmt.target in reserved
    return isinstance(stmt, Skip)


class TestGenerator:
    @given(seed=SEEDS)
    @settings(max_examples=100, deadline=None)
    def test_generated_programs_are_well_formed(self, seed):
        program = random_program(seed, SMALL_SPEC)
        assert _well_formed(program)

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_generation_is_deterministic_in_the_seed(self, seed):
        assert random_program(seed, SMALL_SPEC) == random_program(seed, SMALL_SPEC)
        assert random_programs(seed, SMALL_SPEC) == random_programs(seed, SMALL_SPEC)

    @given(seed=SEEDS)
    @settings(max_examples=30, deadline=None)
    def test_configuration_contains_every_client_and_handler(self, seed):
        config = random_configuration(seed, SMALL_SPEC)
        names = {h.name for h in config.handlers}
        assert set(SMALL_SPEC.clients) <= names
        assert set(SMALL_SPEC.handlers) <= names

    def test_invalid_specs_rejected(self):
        with pytest.raises(ValueError):
            ProgramSpec(handlers=()).validate()
        with pytest.raises(ValueError):
            ProgramSpec(max_nesting=0).validate()

    def test_safe_spec_never_queries_under_nested_blocks(self):
        spec = ProgramSpec(
            handlers=("x", "y"), clients=("c1",), max_nesting=2,
            queries_in_nested_blocks=False, max_calls_per_block=3,
        )
        for seed in range(200):
            assert is_statically_deadlock_free(random_programs(seed, spec))


class TestGuaranteeProperties:
    @given(seed=SEEDS)
    @settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_every_random_schedule_respects_the_reasoning_guarantee(self, seed):
        """Across random programs and random schedules: when execution completes,
        the handler-side execution order matches the logging order per block
        with no interleaving (guarantee 2 of Section 2.2)."""
        config = random_configuration(seed, SMALL_SPEC)
        explorer = Explorer()
        for offset in range(3):
            try:
                _, events = explorer.random_run(config, seed=seed + offset)
            except DeadlockError:
                continue  # deadlock is legal for programs with query cycles
            check_handler_guarantee(events)

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_flat_blocks_are_deadlock_free(self, seed):
        """Programs whose blocks are never nested cannot deadlock under
        SCOOP/Qs: a blocking query only waits on a handler no other
        reservation is stacked behind."""
        config = random_configuration(seed, SAFE_SPEC)
        result = Explorer(max_states=80_000).explore(config)
        assert not result.has_deadlock
        assert result.terminal_states or result.truncated

    @given(seed=SEEDS)
    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_static_analysis_sound_on_random_programs(self, seed):
        """Acyclic wait-for graph implies the explorer finds no deadlock."""
        programs = random_programs(seed, SMALL_SPEC)
        if not is_statically_deadlock_free(programs):
            return
        config = random_configuration(seed, SMALL_SPEC)
        result = Explorer(max_states=80_000).explore(config)
        assert not result.has_deadlock
