"""Property tests for the wire framing layer (hypothesis).

The framing invariant the process backend rests on: *any* sequence of
payloads, encoded through a :class:`~repro.queues.socket_queue.FrameStream`
and delivered through a real socketpair in arbitrary chunkings — including
frames larger than a single ``recv`` — decodes to the identical sequence,
regardless of how receive timeouts interleave with delivery.
"""

from __future__ import annotations

import socket
import struct
import threading

from hypothesis import HealthCheck, given, settings, strategies as st

from repro.queues.codec import get_codec
from repro.queues.socket_queue import FrameStream

# JSON-native scalars whose decode is the identity (finite floats only:
# NaN breaks equality, and ints within double precision survive json)
_json_scalars = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-(2**53), max_value=2**53),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.text(max_size=40),
)

_json_values = st.recursive(
    _json_scalars,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

#: frame payloads are dicts (the transport contract)
_json_payloads = st.dictionaries(st.text(max_size=8), _json_values, max_size=5)

# pickle payloads may additionally carry tuples, sets and bytes — the types
# the pickle codec exists to round-trip faithfully
_pickle_values = st.recursive(
    st.one_of(_json_scalars, st.binary(max_size=20),
              st.frozensets(st.integers(), max_size=4)),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

_pickle_payloads = st.dictionaries(st.text(max_size=8), _pickle_values, max_size=5)

# bin payloads: everything pickle carries, plus big ints (past the native
# 64-bit tag) and protocol-shaped dicts exercising the kind/key tables
_bin_values = st.recursive(
    st.one_of(
        _json_scalars,
        st.integers(min_value=-(2**80), max_value=2**80),
        st.binary(max_size=20),
        st.frozensets(st.integers(), max_size=4),
        st.sets(st.integers(), max_size=4),
    ),
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.tuples(children, children),
        st.dictionaries(st.text(max_size=8), children, max_size=4),
    ),
    max_leaves=12,
)

#: keys mix table-coded protocol names with arbitrary (escaped) strings
_bin_keys = st.one_of(
    st.sampled_from(["kind", "feature", "args", "kwargs", "value", "ticket"]),
    st.text(max_size=8),
)

_bin_payloads = st.dictionaries(_bin_keys, _bin_values, max_size=5)


def _pump(codec_name: str, payloads, chunk_sizes, recv_timeout=1.0):
    """Send ``payloads`` as raw bytes in odd chunkings; decode them back."""
    codec = get_codec(codec_name)
    blob = b"".join(
        struct.pack(">I", len(data)) + data
        for data in (codec.encode(p) for p in payloads)
    )
    a, b = socket.socketpair()
    received = []
    try:
        stream = FrameStream(b, codec_name)

        def send():
            offset = 0
            i = 0
            while offset < len(blob):
                size = chunk_sizes[i % len(chunk_sizes)] if chunk_sizes else len(blob)
                a.sendall(blob[offset:offset + size])
                offset += size
                i += 1
            a.close()

        sender = threading.Thread(target=send, daemon=True)
        sender.start()
        for _ in payloads:
            frame = None
            attempts = 0
            while frame is None:
                frame = stream.recv(timeout=recv_timeout)
                attempts += 1
                assert attempts < 1000, "frame never arrived"
            received.append(frame)
        sender.join(timeout=5)
    finally:
        a.close()
        b.close()
    return received


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(_json_payloads, min_size=1, max_size=6),
       chunk_sizes=st.lists(st.integers(min_value=1, max_value=37),
                            min_size=1, max_size=5))
def test_json_sequences_round_trip_across_chunkings(payloads, chunk_sizes):
    assert _pump("json", payloads, chunk_sizes) == payloads


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(_pickle_payloads, min_size=1, max_size=6),
       chunk_sizes=st.lists(st.integers(min_value=1, max_value=37),
                            min_size=1, max_size=5))
def test_pickle_sequences_round_trip_faithfully(payloads, chunk_sizes):
    received = _pump("pickle", payloads, chunk_sizes)
    assert received == payloads
    for sent, got in zip(payloads, received):
        for key, value in sent.items():
            assert type(got[key]) is type(value)


@settings(max_examples=40, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(_bin_payloads, min_size=1, max_size=6),
       chunk_sizes=st.lists(st.integers(min_value=1, max_value=37),
                            min_size=1, max_size=5))
def test_bin_sequences_round_trip_faithfully(payloads, chunk_sizes):
    received = _pump("bin", payloads, chunk_sizes)
    assert received == payloads
    for sent, got in zip(payloads, received):
        for key, value in sent.items():
            assert type(got[key]) is type(value)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(size=st.integers(min_value=70_000, max_value=200_000),
       tail=st.lists(_json_payloads, max_size=2))
def test_frames_larger_than_one_recv(size, tail):
    """A body bigger than the 64 KiB read chunk needs several recv calls —
    and whatever follows it in the pipe must still decode cleanly."""
    payloads = [{"big": "x" * size}, *tail]
    assert _pump("json", payloads, chunk_sizes=[50_000]) == payloads


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large])
@given(size=st.integers(min_value=70_000, max_value=200_000),
       tail=st.lists(_bin_payloads, max_size=2))
def test_bin_frames_larger_than_one_recv(size, tail):
    payloads = [{"big": "x" * size, "blob": b"\x00" * 1000}, *tail]
    assert _pump("bin", payloads, chunk_sizes=[50_000]) == payloads


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(_bin_payloads, min_size=1, max_size=10),
       codec_name=st.sampled_from(["bin", "pickle"]),
       max_frames=st.one_of(st.none(), st.integers(min_value=1, max_value=4)))
def test_coalesced_bursts_decode_to_the_identical_sequence(payloads, codec_name,
                                                           max_frames):
    """The coalescing contract: a burst of frames fed and flushed as ONE
    sendall decodes — via recv_many, in any batch granularity — to exactly
    the fed sequence."""
    a, b = socket.socketpair()
    try:
        left, right = FrameStream(a, codec_name), FrameStream(b, codec_name)
        auto_flushed = sum(left.feed(p) for p in payloads)
        flushed = left.flush()
        assert auto_flushed + flushed == len(payloads)
        received = []
        while len(received) < len(payloads):
            batch = right.recv_many(timeout=1.0, max_frames=max_frames)
            assert batch, "burst never fully arrived"
            if max_frames is not None:
                assert len(batch) <= max_frames
            received.extend(batch)
        assert received == payloads
        assert right.recv(timeout=0.01) is None  # nothing trailing
    finally:
        a.close()
        b.close()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(payloads=st.lists(_json_payloads, min_size=1, max_size=4),
       cut=st.integers(min_value=1, max_value=10**6))
def test_interleaved_timeouts_never_desync(payloads, cut):
    """Deliver a prefix, let receives time out, then deliver the rest."""
    codec = get_codec("json")
    blob = b"".join(
        struct.pack(">I", len(data)) + data
        for data in (codec.encode(p) for p in payloads)
    )
    cut = min(cut, max(len(blob) - 1, 1))
    a, b = socket.socketpair()
    try:
        stream = FrameStream(b, "json")
        a.sendall(blob[:cut])
        received = []
        while True:  # drain whatever the prefix completes
            frame = stream.recv(timeout=0.01)
            if frame is None:
                break
            received.append(frame)
        a.sendall(blob[cut:])
        while len(received) < len(payloads):
            frame = stream.recv(timeout=1.0)
            assert frame is not None, "desynced after timeout at a frame boundary"
            received.append(frame)
        assert received == payloads
    finally:
        a.close()
        b.close()
