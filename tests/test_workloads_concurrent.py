"""Tests for the coordination workloads (mutex, prodcons, condition,
threadring, chameneos) across optimization levels."""

import pytest

from repro.workloads.concurrent.runner import (
    CONCURRENT_TASKS,
    run_chameneos,
    run_concurrent,
    run_condition,
    run_mutex,
    run_prodcons,
    run_threadring,
)
from repro.workloads.concurrent.shared import MeetingPlace, SharedQueue
from repro.workloads.params import ConcurrentSizes, TINY_CONCURRENT, concurrent_preset

SIZES = TINY_CONCURRENT


class TestMutex:
    def test_no_lost_updates(self, runtime):
        result = run_mutex(runtime, SIZES)
        assert result.value == SIZES.n * SIZES.m

    def test_counts_reservations(self, qs_runtime):
        result = run_mutex(qs_runtime, SIZES)
        assert result.counters["reservations"] >= SIZES.n * SIZES.m


class TestProdCons:
    def test_everything_produced_is_consumed(self, runtime):
        result = run_prodcons(runtime, SIZES)
        produced, consumed, remaining = result.value["stats"]
        assert produced == SIZES.n * SIZES.m
        assert consumed == SIZES.n * SIZES.m
        assert remaining == 0
        assert result.value["consumed"] == SIZES.n * SIZES.m

    def test_shared_queue_semantics(self):
        queue = SharedQueue()
        assert queue.try_pop() is None
        queue.push(1)
        queue.push(2)
        assert queue.try_pop() == 1
        assert queue.stats() == (2, 1, 1)


class TestCondition:
    def test_alternating_increments_reach_total(self, runtime):
        result = run_condition(runtime, SIZES)
        assert result.value == 2 * SIZES.n * SIZES.m


class TestThreadring:
    def test_token_passed_exact_number_of_times(self, qs_runtime):
        result = run_threadring(qs_runtime, SIZES)
        # the token is taken nt+1 times (initial injection + nt forwards)
        assert result.value["passes"] == SIZES.nt + 1
        assert result.value["final_node"] == SIZES.nt % SIZES.ring_size

    def test_small_ring_unoptimized(self, baseline_runtime):
        sizes = ConcurrentSizes(n=2, m=5, nt=20, nc=5, ring_size=4)
        result = run_threadring(baseline_runtime, sizes)
        assert result.value["passes"] == 21
        assert result.value["final_node"] == 20 % 4


class TestChameneos:
    def test_exact_number_of_meetings(self, runtime):
        result = run_chameneos(runtime, SIZES)
        assert result.value["meetings"] == SIZES.nc
        # every meeting involves exactly two creatures
        assert result.value["per_creature"] == 2 * SIZES.nc

    def test_colour_complement_rules(self):
        assert MeetingPlace.complement("blue", "blue") == "blue"
        assert MeetingPlace.complement("blue", "red") == "yellow"
        assert MeetingPlace.complement("red", "yellow") == "blue"


class TestRunner:
    def test_all_tasks_registered(self):
        assert set(CONCURRENT_TASKS) == {"chameneos", "condition", "mutex", "prodcons", "threadring"}

    def test_unknown_task_rejected(self):
        with pytest.raises(ValueError):
            run_concurrent("philosophers", "all", SIZES)

    @pytest.mark.parametrize("task", sorted(CONCURRENT_TASKS))
    def test_fresh_runtime_wrapper(self, task):
        result = run_concurrent(task, "all", SIZES)
        assert result.name == task
        assert result.config == "all"
        assert result.total_seconds >= 0

    def test_optimizations_reduce_communication_work(self):
        """Fig. 17's direction: the optimized runtime does less communication
        work on the coordination benchmarks than the unoptimized one."""
        for task in ("prodcons", "chameneos", "condition"):
            noisy = run_concurrent(task, "none", SIZES)
            quiet = run_concurrent(task, "all", SIZES)
            assert quiet.communication_ops < noisy.communication_ops

    def test_presets(self):
        assert concurrent_preset("tiny").m <= concurrent_preset("small").m
        with pytest.raises(ValueError):
            concurrent_preset("gigantic")
