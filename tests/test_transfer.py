"""Tests for the bulk data-transfer helpers and their optimization behaviour.

This is the heart of the Table 1 / Fig. 16 reproduction: the number of sync
round-trips a pull loop performs must depend on the optimization level the
way the paper describes.
"""

import numpy as np
import pytest

from repro.core.api import command, query
from repro.core.region import SeparateObject
from repro.core.runtime import QsRuntime
from repro.core.transfer import pull_array, pull_elements, pull_rows, push_elements


class Store(SeparateObject):
    def __init__(self, n):
        self.data = np.arange(float(n))
        self.matrix = np.arange(12.0).reshape(4, 3)

    @query
    def get(self, i):
        return float(self.data[i])

    @command
    def set(self, i, value):
        self.data[i] = value


N = 40


def _make(level):
    rt = QsRuntime(level)
    ref = rt.new_handler("store").create(Store, N)
    return rt, ref


class TestPull:
    @pytest.mark.parametrize("level", ["none", "dynamic", "static", "qoq", "all"])
    def test_pull_correctness_all_levels(self, level):
        rt, ref = _make(level)
        with rt:
            with rt.separate(ref) as proxy:
                out, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            np.testing.assert_allclose(out, np.arange(float(N)))
            assert report.elements == N

    def test_unoptimized_needs_one_roundtrip_per_element(self):
        rt, ref = _make("none")
        with rt:
            with rt.separate(ref) as proxy:
                _, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            assert report.sync_roundtrips >= N
            assert report.roundtrips_per_element >= 1.0

    def test_qoq_alone_does_not_reduce_roundtrips(self):
        rt, ref = _make("qoq")
        with rt:
            with rt.separate(ref) as proxy:
                _, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            assert report.sync_roundtrips >= N

    def test_dynamic_coalescing_elides_all_but_one(self):
        rt, ref = _make("dynamic")
        with rt:
            with rt.separate(ref) as proxy:
                _, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            assert report.sync_roundtrips == 1
            assert report.syncs_elided == N

    def test_static_coalescing_removes_loop_syncs(self):
        rt, ref = _make("static")
        with rt:
            with rt.separate(ref) as proxy:
                _, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            # one sync survives (the pre-loop sync); nothing is checked dynamically
            assert report.sync_roundtrips <= 2
            assert report.syncs_elided == 0

    def test_all_optimizations_minimal_roundtrips(self):
        rt, ref = _make("all")
        with rt:
            with rt.separate(ref) as proxy:
                _, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            assert report.sync_roundtrips <= 1

    def test_ordering_matches_paper_shape(self):
        """none/qoq >> dynamic >= static/all in communication round-trips."""
        trips = {}
        for level in ["none", "dynamic", "static", "qoq", "all"]:
            rt, ref = _make(level)
            with rt:
                with rt.separate(ref) as proxy:
                    _, report = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            trips[level] = report.sync_roundtrips
        assert trips["none"] >= 10 * trips["dynamic"]
        assert trips["qoq"] >= 10 * trips["all"]
        assert trips["static"] <= trips["dynamic"] + 1
        assert trips["all"] <= trips["static"]

    def test_pull_elements_into_list(self):
        rt, ref = _make("all")
        with rt:
            with rt.separate(ref) as proxy:
                out, _ = pull_elements(rt, proxy, lambda obj, i: obj.data[i] * 2, 5)
            assert out == [0.0, 2.0, 4.0, 6.0, 8.0]

    def test_pull_rows(self):
        rt, ref = _make("all")
        with rt:
            with rt.separate(ref) as proxy:
                rows, report = pull_rows(rt, proxy, lambda obj, r: obj.matrix[r].copy(), 4)
            assert report.elements == 4
            np.testing.assert_allclose(np.vstack(rows), np.arange(12.0).reshape(4, 3))

    def test_negative_count_rejected(self):
        rt, ref = _make("all")
        with rt:
            with rt.separate(ref) as proxy:
                with pytest.raises(ValueError):
                    pull_elements(rt, proxy, lambda obj, i: obj.data[i], -1)

    def test_pull_requires_reservation(self):
        rt, ref = _make("all")
        with rt:
            from repro.errors import NotReservedError
            with pytest.raises(NotReservedError):
                pull_array(rt, ref, lambda obj, i: obj.data[i], 3)


class TestPush:
    def test_push_is_asynchronous_per_element(self):
        rt, ref = _make("all")
        with rt:
            values = [float(i * 10) for i in range(N)]
            with rt.separate(ref) as proxy:
                report = push_elements(rt, proxy, lambda obj, i, v: obj.data.__setitem__(i, v), values)
                # a query acts as a barrier before we verify
                assert proxy.get(3) == 30.0
            assert report.async_calls == N
            assert report.sync_roundtrips <= 1

    def test_push_then_pull_round_trip(self):
        rt, ref = _make("all")
        with rt:
            values = list(np.linspace(0, 1, N))
            with rt.separate(ref) as proxy:
                push_elements(rt, proxy, lambda obj, i, v: obj.data.__setitem__(i, v), values)
                out, _ = pull_array(rt, proxy, lambda obj, i: obj.data[i], N)
            np.testing.assert_allclose(out, values)
