"""Tests for expanded objects (value semantics across region boundaries)."""

import numpy as np

from repro import QsRuntime, SeparateObject, command, query
from repro.core.expanded import (
    Expanded,
    ExpandedView,
    copy_expanded,
    expanded_view,
    is_expanded,
    prepare_arguments,
    register_expanded,
    unregister_expanded,
)
from repro.util.counters import Counters


class Point(Expanded):
    def __init__(self, x, y):
        self.x = x
        self.y = y


class Legacy:
    """A plain class registered as expanded without subclassing."""

    def __init__(self, payload):
        self.payload = payload


class Sink(SeparateObject):
    def __init__(self):
        self.received = []

    @command
    def accept(self, value):
        self.received.append(value)

    @query
    def first(self):
        return self.received[0]

    @query
    def count(self):
        return len(self.received)


class TestClassification:
    def test_subclasses_and_views_are_expanded(self):
        assert is_expanded(Point(1, 2))
        assert is_expanded(expanded_view([1, 2, 3]))
        assert not is_expanded([1, 2, 3])
        assert not is_expanded("text")

    def test_registration_round_trip(self):
        assert not is_expanded(Legacy(1))
        register_expanded(Legacy)
        try:
            assert is_expanded(Legacy(1))
        finally:
            unregister_expanded(Legacy)
        assert not is_expanded(Legacy(1))

    def test_register_usable_as_decorator(self):
        @register_expanded
        class Decorated:
            pass

        try:
            assert is_expanded(Decorated())
        finally:
            unregister_expanded(Decorated)


class TestCopying:
    def test_copy_is_deep_and_counted(self):
        counters = Counters()
        original = Point(1, [2, 3])
        copied = copy_expanded(original, counters)
        assert copied is not original
        assert copied.y is not original.y
        snap = counters.snapshot()
        assert snap["expanded_copies"] == 1
        assert snap["bytes_copied"] > 0

    def test_expanded_view_unwraps_to_a_copy(self):
        data = [1, 2, 3]
        copied = copy_expanded(expanded_view(data))
        assert copied == data and copied is not data

    def test_custom_scoop_copy_hook_is_used(self):
        class Snapshot(Expanded):
            def __init__(self, values):
                self.values = values
                self.copies = 0

            def scoop_copy(self):
                clone = Snapshot(list(self.values))
                clone.copies = self.copies + 1
                return clone

        copied = copy_expanded(Snapshot([1]))
        assert copied.copies == 1

    def test_prepare_arguments_only_copies_expanded_values(self):
        counters = Counters()
        shared = [1, 2]
        point = Point(0, 0)
        args, kwargs = prepare_arguments((shared, point), {"tag": "x", "p": Point(9, 9)}, counters)
        assert args[0] is shared                     # reference semantics preserved
        assert args[1] is not point                  # expanded -> copied
        assert kwargs["tag"] == "x"
        assert kwargs["p"] is not None and kwargs["p"].x == 9
        assert counters.snapshot()["expanded_copies"] == 2

    def test_prepare_arguments_fast_path_returns_same_objects(self):
        args, kwargs = ((1, 2), {"a": 3})
        out_args, out_kwargs = prepare_arguments(args, kwargs, None)
        assert out_args is args and out_kwargs is kwargs


class TestRuntimeIntegration:
    def test_async_argument_is_snapshotted_at_logging_time(self):
        """Mutating the client's expanded object after logging the call must
        not change what the handler receives — that is the whole point of
        value semantics for expanded classes."""
        with QsRuntime("all") as rt:
            sink = rt.new_handler("sink").create(Sink)
            point = Point(1, 1)
            with rt.separate(sink) as s:
                s.accept(point)
                point.x = 999            # mutate after the call was logged
                assert s.count() == 1
                received = s.first()
            assert received.x == 1
            assert rt.stats()["expanded_copies"] == 1

    def test_plain_arguments_keep_reference_semantics(self):
        with QsRuntime("all") as rt:
            sink = rt.new_handler("sink").create(Sink)
            token = ("immutable", 1)
            with rt.separate(sink) as s:
                s.accept(token)
                assert s.first() is token
            assert rt.stats()["expanded_copies"] == 0

    def test_expanded_view_ships_numpy_by_value(self):
        with QsRuntime("all") as rt:
            sink = rt.new_handler("sink").create(Sink)
            data = np.arange(4)
            with rt.separate(sink) as s:
                s.accept(expanded_view(data))
                data[:] = -1
                received = s.first()
            np.testing.assert_array_equal(received, np.arange(4))
            assert isinstance(received, np.ndarray)
            assert not isinstance(received, ExpandedView)
