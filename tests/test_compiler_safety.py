"""Property-based safety of the sync optimizations.

The sync-coalescing and sync-hoisting passes must never remove a round trip
the program actually needs: at every point where the client reads handler
state (a query body / handler-tagged local), a handler that was provably
synced in the original function must still be provably synced in the
optimized one.  These properties are checked over random CFGs, with and
without aliasing knowledge.
"""

from hypothesis import given, settings

from repro.compiler.alias import AliasInfo
from repro.compiler.ir import SyncInstr
from repro.compiler.lowering import lower_queries
from repro.compiler.sync_analysis import SyncSetAnalysis
from repro.compiler.sync_elision import SyncElisionPass
from repro.compiler.sync_hoisting import SyncHoistingPass
from repro.compiler.verify import verify_elision_safety, verify_function

from tests.test_compiler_textual import _random_functions


def _new_problems(original, optimized):
    """Verifier findings introduced by the pass (pre-existing ones excluded).

    Random functions may legitimately contain unreachable blocks; a pass is
    only at fault for problems the input did not already have.
    """
    before = set(verify_function(original))
    return [p for p in verify_function(optimized) if p not in before]


class TestElisionSafety:
    @given(fn=_random_functions())
    @settings(max_examples=80, deadline=None)
    def test_elision_preserves_syncedness_of_every_read(self, fn):
        optimized, report = SyncElisionPass().run(fn)
        assert _new_problems(fn, optimized) == []
        assert verify_elision_safety(fn, optimized) == []
        assert report.removed_syncs <= report.total_syncs

    @given(fn=_random_functions())
    @settings(max_examples=60, deadline=None)
    def test_elision_with_no_alias_facts_is_also_safe(self, fn):
        aliases = AliasInfo.no_aliasing(sorted(fn.handlers()))
        optimized, _ = SyncElisionPass(aliases).run(fn)
        assert verify_elision_safety(fn, optimized, aliases) == []

    @given(fn=_random_functions())
    @settings(max_examples=60, deadline=None)
    def test_elision_never_increases_sync_count(self, fn):
        optimized, _ = SyncElisionPass().run(fn)
        assert optimized.count_instructions(SyncInstr) <= fn.count_instructions(SyncInstr)

    @given(fn=_random_functions())
    @settings(max_examples=60, deadline=None)
    def test_lowering_then_eliding_is_safe(self, fn):
        lowered = lower_queries(fn)
        optimized, _ = SyncElisionPass().run(lowered)
        assert verify_elision_safety(lowered, optimized) == []

    @given(fn=_random_functions())
    @settings(max_examples=60, deadline=None)
    def test_elision_is_idempotent(self, fn):
        once, first = SyncElisionPass().run(fn)
        twice, second = SyncElisionPass().run(once)
        assert second.removed_syncs == 0
        assert once.count_instructions(SyncInstr) == twice.count_instructions(SyncInstr)


class TestHoistingSafety:
    @given(fn=_random_functions())
    @settings(max_examples=60, deadline=None)
    def test_hoisting_preserves_syncedness_and_structure(self, fn):
        optimized, _ = SyncHoistingPass().run(fn)
        assert _new_problems(fn, optimized) == []
        assert verify_elision_safety(fn, optimized) == []

    @given(fn=_random_functions())
    @settings(max_examples=40, deadline=None)
    def test_hoisting_only_strengthens_exit_sync_sets(self, fn):
        """Hoisting adds syncs, so every block's exit sync-set can only grow."""
        optimized, _ = SyncHoistingPass(then_elide=False).run(fn)
        before = SyncSetAnalysis().run(fn)
        after = SyncSetAnalysis().run(optimized)
        for name in fn.reachable_blocks():
            assert before.exit(name) <= after.exit(name)
