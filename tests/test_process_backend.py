"""Process-backend specifics: hosting, codecs, counters, failure transport.

Backend *parity* (same programs, same observations, same counters as
threads/sim) lives in ``tests/test_backends.py``; this file covers what is
unique to crossing a process boundary: object hosting and remote handles,
the pickle/json codec split, cross-process counter aggregation, remote
exceptions, worker-process pooling, and the selection plumbing
(``process[:nproc][:codec]`` specs and ``REPRO_BACKEND``).
"""

from __future__ import annotations

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.backends import ProcessBackend
from repro.backends.process import RemoteHandle, RemoteHandlerError
from repro.errors import QueryFailedError, ScoopError


class Box(SeparateObject):
    """Stores whatever it is told — used to round-trip rich argument types."""

    def __init__(self) -> None:
        self.value = None
        self.calls = 0

    @command
    def put(self, value) -> None:
        self.value = value
        self.calls += 1

    @query
    def get(self):
        return self.value

    @query
    def echo(self, value):
        return value

    @query
    def calls_seen(self) -> int:
        return self.calls


class Exploder(SeparateObject):
    @command
    def misfire(self) -> None:
        raise ValueError("deliberate async failure")

    @query
    def blow_up(self) -> None:
        raise KeyError("deliberate query failure")

    @query
    def ok(self) -> str:
        return "fine"


def top_level_halve(obj, n):
    """Module-level helper for apply/compute over the pickle codec."""
    return n // 2


class TestHosting:
    def test_create_returns_remote_handle(self):
        with QsRuntime("all", backend="process") as rt:
            ref = rt.new_handler("box").create(Box)
            assert isinstance(ref._raw(), RemoteHandle)
            assert ref._raw()._scoop_class is Box
            with rt.separate(ref) as b:
                b.put(41)
                assert b.get() == 41

    def test_unpicklable_object_is_a_clear_error(self):
        class Local(SeparateObject):  # nested class: pickle cannot import it
            pass

        with QsRuntime("all", backend="process") as rt:
            with pytest.raises(ScoopError, match="picklable"):
                rt.new_handler("h").create(Local)
            # the runtime (and its worker) must survive the failed adopt
            ref = rt.new_handler("ok").create(Box)
            with rt.separate(ref) as b:
                b.put(1)
                assert b.get() == 1

    def test_multiple_objects_per_handler(self):
        with QsRuntime("all", backend="process") as rt:
            handler = rt.new_handler("shelf")
            first, second = handler.create(Box), handler.create(Box)
            with rt.separate(first) as b:
                b.put("a")
            with rt.separate(second) as b:
                b.put("b")
            with rt.separate(first) as b:
                assert b.get() == "a"
            with rt.separate(second) as b:
                assert b.get() == "b"


class TestCodecs:
    def test_pickle_codec_round_trips_rich_arguments(self):
        """Satellite: the pickle codec keeps tuples tuples, end to end."""
        payload = {"point": (1, 2), "nested": [(3, 4), {5, 6}], "blob": b"\x00\xff"}
        with QsRuntime("all", backend="process:pickle") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                b.put(payload)
                value = b.get()
        assert value == payload
        assert isinstance(value["point"], tuple)
        assert isinstance(value["nested"][0], tuple)
        assert isinstance(value["nested"][1], set)

    def test_json_codec_carries_json_types(self):
        with QsRuntime("all", backend="process:json") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                b.put({"n": 3, "xs": [1, 2.5, "three", None, True]})
                assert b.get() == {"n": 3, "xs": [1, 2.5, "three", None, True]}

    def test_json_codec_rejects_callables_with_guidance(self):
        with QsRuntime("all", backend="process:json") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                with pytest.raises(ScoopError, match="'pickle' or 'bin'"):
                    b.apply(top_level_halve, 10)

    def test_pickle_codec_ships_callables(self):
        with QsRuntime("all", backend="process") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                assert b.compute(top_level_halve, 10) == 5

    def test_bin_codec_round_trips_rich_arguments(self):
        """Tentpole: the compact binary codec has pickle's fidelity."""
        payload = {"point": (1, 2), "nested": [(3, 4), {5, 6}], "blob": b"\x00\xff",
                   "big": 2 ** 80}
        with QsRuntime("all", backend="process:bin") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                b.put(payload)
                value = b.get()
        assert value == payload
        assert isinstance(value["point"], tuple)
        assert isinstance(value["nested"][0], tuple)
        assert isinstance(value["nested"][1], set)

    def test_bin_codec_ships_callables_via_pickle_fallback(self):
        with QsRuntime("all", backend="process:bin") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                assert b.compute(top_level_halve, 10) == 5

    def test_nested_tuple_payload_under_all_three_codecs(self):
        """Satellite: json raises a pointed error instead of silently
        mutating nested tuples into lists; pickle and bin stay faithful."""
        nested = [("k", (1, 2))]
        for codec in ("pickle", "bin"):
            with QsRuntime("all", backend=f"process:{codec}") as rt:
                ref = rt.new_handler("box").create(Box)
                with rt.separate(ref) as b:
                    b.put(nested)
                    value = b.get()
                assert value == nested
                assert isinstance(value[0], tuple)
                assert isinstance(value[0][1], tuple)
        with QsRuntime("all", backend="process:json") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                with pytest.raises(ScoopError, match="pickle.*bin|bin.*pickle"):
                    b.put(nested)

    def test_coalescing_counter_identical_across_codecs(self):
        """A burst of async calls coalesces into batched sendalls, and the
        wire_frames_coalesced counter — a pure frame count — must not
        depend on the codec."""
        observed = {}
        for codec in ("json", "pickle", "bin"):
            with QsRuntime("all", backend=f"process:{codec}") as rt:
                ref = rt.new_handler("box").create(Box)
                with rt.separate(ref) as b:
                    for i in range(100):
                        b.put(i)
                    assert b.calls_seen() == 100
                observed[codec] = rt.stats()["wire_frames_coalesced"]
        assert observed["json"] == observed["pickle"] == observed["bin"]
        assert observed["json"] > 0, "a 100-call burst must coalesce frames"

    def test_packaged_function_query_ships_raw_fn(self):
        # regression: with client-executed queries off, query_function wraps
        # the user fn in a local lambda; the transport must ship the raw fn
        # (plus its arguments), not try to pickle the wrapper
        with QsRuntime("qoq", backend="process") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                assert b.compute(top_level_halve, 10) == 5


class TestCountersAggregation:
    def test_calls_executed_visible_before_shutdown(self):
        with QsRuntime("all", backend="process") as rt:
            ref = rt.new_handler("box").create(Box)
            with rt.separate(ref) as b:
                for i in range(7):
                    b.put(i)
                assert b.calls_seen() == 7  # the sync makes the work visible
            stats = rt.stats()
        assert stats["calls_executed"] == 7
        assert stats["async_calls"] == 7

    def test_final_snapshot_merged_at_shutdown(self):
        rt = QsRuntime("all", backend="process")
        ref = rt.new_handler("box").create(Box)
        with rt.separate(ref) as b:
            b.put(1)
            b.put(2)
        rt.shutdown()
        # no query ever forced a reply; the close report must carry the count
        assert rt.stats()["calls_executed"] == 2


class TestRemoteFailures:
    def test_query_exception_keeps_its_type(self):
        with QsRuntime("all", backend="process") as rt:
            ref = rt.new_handler("boom").create(Exploder)
            with rt.separate(ref) as e:
                with pytest.raises(KeyError, match="deliberate query failure"):
                    e.blow_up()
                assert e.ok() == "fine"  # the handler survives a failed query

    def test_packaged_query_exception_wrapped_like_in_memory(self):
        config = QsRuntime("none", backend="process")
        with config as rt:
            ref = rt.new_handler("boom").create(Exploder)
            with rt.separate(ref) as e:
                with pytest.raises(QueryFailedError):
                    e.ask("blow_up")

    def test_async_failure_surfaces_at_shutdown(self):
        rt = QsRuntime("all", backend="process")
        ref = rt.new_handler("boom").create(Exploder)
        with rt.separate(ref) as e:
            e.misfire()
        with pytest.raises(ScoopError, match="asynchronous call"):
            rt.shutdown()
        failures = rt.handler_failures()
        assert len(failures) == 1
        assert isinstance(failures[0], RemoteHandlerError)
        assert "deliberate async failure" in str(failures[0])
        assert "misfire" in failures[0].remote_traceback


class TestWorkerPooling:
    def test_processes_cap_shares_workers(self):
        backend = ProcessBackend(processes=1)
        with QsRuntime("all", backend=backend) as rt:
            refs = [rt.new_handler(f"h{i}").create(Box) for i in range(3)]
            for i, ref in enumerate(refs):
                with rt.separate(ref) as b:
                    b.put(i * 10)
            values = []
            for ref in refs:
                with rt.separate(ref) as b:
                    values.append(b.get())
            assert values == [0, 10, 20]
            assert len(backend._workers) == 1

    def test_default_is_one_process_per_handler(self):
        backend = ProcessBackend()
        with QsRuntime("all", backend=backend) as rt:
            rt.new_handler("a").create(Box)
            rt.new_handler("b").create(Box)
            assert len(backend._workers) == 2

    def test_multi_handler_reservations_across_workers(self):
        with QsRuntime("all", backend="process") as rt:
            left = rt.new_handler("left").create(Box)
            right = rt.new_handler("right").create(Box)
            for i in range(5):
                with rt.separate(left, right) as (lt, rt_):
                    lt.put(i)
                    rt_.put(-i)
                    assert (lt.get(), rt_.get()) == (i, -i)


class TestSelection:
    def test_env_var_selects_process(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "process:1")
        with QsRuntime("all") as rt:
            assert rt.backend.name == "process"
            assert rt.backend.processes == 1

    def test_config_carries_process_backend(self, monkeypatch):
        from repro.config import QsConfig

        monkeypatch.delenv("REPRO_BACKEND", raising=False)
        with QsRuntime(QsConfig.all().with_(backend="process:1:json")) as rt:
            assert rt.backend.name == "process"
            assert rt.backend.codec == "json"

    def test_runtime_event_is_a_thread_event(self):
        # clients stay threads of the parent under the process backend
        with QsRuntime("all", backend="process:1") as rt:
            event = rt.event()
            event.set()
            assert event.is_set()
