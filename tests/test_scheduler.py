"""Tests for the lightweight-task layer (virtual-time cooperative scheduler)."""

import pytest
from hypothesis import given, strategies as st

from repro.errors import DeadlockError, SimulationError
from repro.sched.scheduler import CooperativeScheduler
from repro.sched.tasks import (
    Compute,
    Get,
    Handoff,
    Put,
    Signal,
    SimChannel,
    SimEvent,
    Spawn,
    Wait,
    as_generator,
)


class TestBasics:
    def test_single_task_compute_advances_time(self):
        sched = CooperativeScheduler(ncores=1)
        sched.spawn(as_generator([Compute(5.0), Compute(2.5)]))
        assert sched.run() == pytest.approx(7.5)

    def test_two_cores_run_in_parallel(self):
        sched = CooperativeScheduler(ncores=2)
        sched.spawn(as_generator([Compute(4.0)]))
        sched.spawn(as_generator([Compute(4.0)]))
        assert sched.run() == pytest.approx(4.0)

    def test_one_core_serialises(self):
        sched = CooperativeScheduler(ncores=1)
        sched.spawn(as_generator([Compute(4.0)]))
        sched.spawn(as_generator([Compute(4.0)]))
        assert sched.run() == pytest.approx(8.0)

    def test_task_result_captured(self):
        sched = CooperativeScheduler()

        def work():
            yield Compute(1.0)
            return "done"

        task = sched.spawn(work())
        sched.run()
        assert task.result == "done"
        assert task.done

    def test_invalid_core_count(self):
        with pytest.raises(ValueError):
            CooperativeScheduler(ncores=0)

    def test_negative_compute_rejected(self):
        with pytest.raises(ValueError):
            Compute(-1.0)

    def test_failing_task_raises_simulation_error(self):
        sched = CooperativeScheduler()

        def bad():
            yield Compute(1.0)
            raise RuntimeError("boom")

        sched.spawn(bad())
        with pytest.raises(SimulationError):
            sched.run()


class TestSynchronisation:
    def test_event_wait_and_signal(self):
        sched = CooperativeScheduler(ncores=2)
        event = SimEvent("go")
        order = []

        def waiter():
            yield Wait(event)
            order.append("woke")
            yield Compute(1.0)

        def signaller():
            yield Compute(3.0)
            order.append("signalling")
            yield Signal(event)

        sched.spawn(waiter())
        sched.spawn(signaller())
        total = sched.run()
        assert order == ["signalling", "woke"]
        assert total == pytest.approx(4.0)

    def test_channel_put_get(self):
        sched = CooperativeScheduler(ncores=2)
        channel = SimChannel()
        received = []

        def producer():
            for i in range(3):
                yield Compute(1.0)
                yield Put(channel, i)

        def consumer():
            for _ in range(3):
                item = yield Get(channel)
                received.append(item)
                yield Compute(0.5)

        sched.spawn(producer())
        sched.spawn(consumer())
        sched.run()
        assert received == [0, 1, 2]

    def test_spawn_returns_child_task(self):
        sched = CooperativeScheduler()
        seen = {}

        def child():
            yield Compute(1.0)
            return 99

        def parent():
            task = yield Spawn(child(), "kid")
            seen["child"] = task
            yield Compute(0.5)

        sched.spawn(parent())
        sched.run()
        assert seen["child"].name == "kid"
        assert seen["child"].result == 99

    def test_join_event(self):
        sched = CooperativeScheduler(ncores=2)

        def worker():
            yield Compute(2.0)

        task = sched.spawn(worker())
        done = sched.join_event(task)
        woken = []

        def waiter():
            yield Wait(done)
            woken.append(True)

        sched.spawn(waiter())
        sched.run()
        assert woken == [True]

    def test_deadlock_detection(self):
        sched = CooperativeScheduler()
        event = SimEvent("never")

        def stuck():
            yield Wait(event)

        sched.spawn(stuck())
        with pytest.raises(DeadlockError):
            sched.run()

    def test_handoff_counts_no_context_switch(self):
        sched = CooperativeScheduler(ncores=1)
        event = SimEvent()

        def handler():
            yield Compute(1.0)
            client_task = sched.tasks[1]
            yield Handoff(client_task)
            yield Signal(event)

        def client():
            yield Wait(event)
            yield Compute(1.0)

        sched.spawn(handler(), "handler")
        sched.spawn(client(), "client")
        sched.run()
        assert sched.counters.get("handoffs") == 1


class TestScaling:
    @given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=20))
    def test_makespan_bounds(self, ncores, ntasks):
        """Virtual makespan is bounded by work/p below and total work above."""
        sched = CooperativeScheduler(ncores=ncores)
        for _ in range(ntasks):
            sched.spawn(as_generator([Compute(1.0)]))
        total = sched.run()
        assert total >= ntasks / ncores - 1e-9
        assert total <= ntasks + 1e-9

    def test_embarrassingly_parallel_speedup(self):
        times = {}
        for cores in (1, 4):
            sched = CooperativeScheduler(ncores=cores)
            for _ in range(8):
                sched.spawn(as_generator([Compute(1.0)]))
            times[cores] = sched.run()
        assert times[1] / times[4] == pytest.approx(4.0)
