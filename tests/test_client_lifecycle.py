"""Client-lifecycle error paths, identical across all four backends.

The happy paths of ``spawn_client``/``join_clients``/``shutdown`` are
exercised everywhere; what must ALSO hold on every backend is the failure
contract: a raising client body is collected and surfaced (not swallowed,
not a hang), ``shutdown(check_failures=True)`` re-raises both client and
asynchronous handler failures, and shutting down twice is a no-op.  The
``any_backend_name`` fixture runs each scenario on threads, sim, process
and async.
"""

from __future__ import annotations

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.errors import ScoopError


class Service(SeparateObject):
    """Module-level (picklable) service so the process backend can host it."""

    def __init__(self) -> None:
        self.hits = 0

    @command
    def ping(self) -> None:
        self.hits += 1

    @command
    def misfire(self) -> None:
        raise RuntimeError("deliberate asynchronous failure")

    @query
    def count(self) -> int:
        return self.hits


class ClientBodyError(Exception):
    pass


def test_raising_client_surfaces_in_join(any_backend_name):
    rt = QsRuntime("all", backend=any_backend_name)
    try:
        ref = rt.new_handler("svc").create(Service)

        def good() -> None:
            with rt.separate(ref) as svc:
                svc.ping()

        def bad() -> None:
            with rt.separate(ref) as svc:
                svc.ping()
            raise ClientBodyError("client body exploded")

        rt.spawn_client(good, name="good")
        rt.spawn_client(bad, name="bad")
        with pytest.raises(ScoopError) as excinfo:
            rt.join_clients()
        assert isinstance(excinfo.value.__cause__, ClientBodyError)
        # the failure must not wedge the handler: it still answers queries
        with rt.separate(ref) as svc:
            assert svc.count() == 2
    finally:
        rt.shutdown(check_failures=False)


def test_raising_client_surfaces_at_shutdown(any_backend_name):
    rt = QsRuntime("all", backend=any_backend_name)
    ref = rt.new_handler("svc").create(Service)

    def bad() -> None:
        with rt.separate(ref) as svc:
            svc.ping()
        raise ClientBodyError("late failure")

    handle = rt.spawn_client(bad, name="bad")
    rt.backend.join_client(handle)  # drain without the error-checking join
    with pytest.raises(ScoopError, match="client thread"):
        rt.shutdown(check_failures=True)
    # the failed shutdown completed: a second one is an idempotent no-op
    rt.shutdown(check_failures=True)


def test_handler_async_failure_surfaces_at_shutdown(any_backend_name):
    rt = QsRuntime("all", backend=any_backend_name)
    ref = rt.new_handler("svc").create(Service)
    with rt.separate(ref) as svc:
        svc.misfire()
        svc.ping()
    # the raising command must not take the handler down with it
    with rt.separate(ref) as svc:
        assert svc.count() == 1
    with pytest.raises(ScoopError, match="asynchronous call"):
        rt.shutdown(check_failures=True)
    rt.shutdown(check_failures=True)  # idempotent after a failing shutdown


def test_double_shutdown_is_idempotent(any_backend_name):
    rt = QsRuntime("all", backend=any_backend_name)
    ref = rt.new_handler("svc").create(Service)
    with rt.separate(ref) as svc:
        svc.ping()
    rt.shutdown(check_failures=True)
    rt.shutdown(check_failures=True)
    rt.shutdown(check_failures=False)


def test_spawn_after_shutdown_is_rejected(any_backend_name):
    rt = QsRuntime("all", backend=any_backend_name)
    rt.shutdown()
    with pytest.raises(ScoopError):
        rt.spawn_client(lambda: None)


def test_raising_async_client_surfaces_at_shutdown():
    """The coroutine-client path keeps the same failure contract."""
    rt = QsRuntime("all", backend="async")
    ref = rt.new_handler("svc").create(Service)

    async def bad() -> None:
        async with rt.separate_async(ref) as svc:
            await svc.ping()
        raise ClientBodyError("coroutine client exploded")

    rt.spawn_async_client(bad, name="bad")
    with pytest.raises(ScoopError) as excinfo:
        rt.join_clients()
    assert isinstance(excinfo.value.__cause__, ClientBodyError)
    rt.shutdown(check_failures=False)
