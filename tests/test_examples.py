"""The example scripts must run end to end (they are part of the public API surface)."""

import pathlib
import subprocess
import sys


EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"


def run_example(name: str, *args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name), *args],
        capture_output=True,
        text=True,
        timeout=300,
        check=False,
    )


def test_examples_directory_contents():
    names = {p.name for p in EXAMPLES.glob("*.py")}
    assert {"quickstart.py", "cowichan_pipeline.py", "bank_transfers.py",
            "chameneos_redux.py", "sync_coalescing_tour.py",
            "dining_philosophers.py", "monitored_pipeline.py",
            "deadlock_analysis.py", "async_fan_in.py"} <= names


def test_quickstart_runs():
    proc = run_example("quickstart.py")
    assert proc.returncode == 0, proc.stderr
    assert "final balance" in proc.stdout


def test_cowichan_pipeline_runs_small():
    proc = run_example("cowichan_pipeline.py", "--nr", "16", "--workers", "2")
    assert proc.returncode == 0, proc.stderr
    assert "all results match the sequential reference" in proc.stdout


def test_bank_transfers_conserves_money():
    proc = run_example("bank_transfers.py")
    assert proc.returncode == 0, proc.stderr
    assert "money conserved" in proc.stdout


def test_bank_transfers_on_the_sim_backend():
    proc = run_example("bank_transfers.py", "--backend", "sim")
    assert proc.returncode == 0, proc.stderr
    assert "money conserved" in proc.stdout


def test_dining_philosophers_on_the_sim_backend():
    proc = run_example("dining_philosophers.py", "--backend", "sim",
                       "--philosophers", "4", "--rounds", "5")
    assert proc.returncode == 0, proc.stderr
    assert "no deadlock" in proc.stdout


def test_chameneos_example_runs():
    proc = run_example("chameneos_redux.py", "--meetings", "30", "--creatures", "4")
    assert proc.returncode == 0, proc.stderr
    assert "meetings=30" in proc.stdout


def test_sync_coalescing_tour_runs():
    proc = run_example("sync_coalescing_tour.py")
    assert proc.returncode == 0, proc.stderr
    assert "Fig. 14 loop: removed 2/3 syncs" in proc.stdout
    assert "Fig. 15 loop (possible aliasing): removed 0/3" in proc.stdout


def test_dining_philosophers_never_deadlocks_and_serves_all_meals():
    proc = run_example("dining_philosophers.py", "--philosophers", "4", "--rounds", "6")
    assert proc.returncode == 0, proc.stderr
    assert "all 24 meals served, no deadlock" in proc.stdout


def test_async_fan_in_audits_clean():
    proc = run_example("async_fan_in.py", "--clients", "500", "--handlers", "2")
    assert proc.returncode == 0, proc.stderr
    assert "500 coroutine clients" in proc.stdout
    assert "audit ok: every client's requests executed in order" in proc.stdout


def test_monitored_pipeline_verifies_guarantees():
    proc = run_example("monitored_pipeline.py", "--jobs", "12", "--workers", "2")
    assert proc.returncode == 0, proc.stderr
    assert "jobs completed        : 12" in proc.stdout
    assert "reasoning guarantees verified" in proc.stdout


def test_deadlock_analysis_reproduces_section_2_5():
    proc = run_example("deadlock_analysis.py")
    assert proc.returncode == 0, proc.stderr
    assert "both Section 2.5 claims verified" in proc.stdout
