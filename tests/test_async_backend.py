"""Async-backend specifics: the awaitable client API and high fan-in.

Backend *parity* (same programs, same observations, same counters as
threads/sim/process with thread clients) lives in ``tests/test_backends.py``;
this file covers what is unique to the asyncio backend: the awaitable
surface (``spawn_async_client``, ``separate_async``, ``await
call/query/sync``), coroutine/thread client coexistence, counter parity
between the two client styles, query failure propagation through awaited
result boxes, fan-in scale, and the API's guard rails.
"""

from __future__ import annotations

import time

import pytest

from repro import QsRuntime, SeparateObject, command, query
from repro.cli import main as cli_main
from repro.core.async_api import AsyncClient
from repro.errors import QueryFailedError, ScoopError

#: counters whose values do not depend on the client style (see
#: tests/test_backends.py for the backend-parity counterpart)
PARITY_COUNTERS = ("async_calls", "queries", "sync_roundtrips", "syncs_elided",
                   "reservations", "multi_reservations", "qoq_enqueues", "calls_executed")


class Account(SeparateObject):
    def __init__(self, balance: int) -> None:
        self.balance = balance

    @command
    def credit(self, amount: int) -> None:
        self.balance += amount

    @command
    def debit(self, amount: int) -> None:
        self.balance -= amount

    @query
    def read(self) -> int:
        return self.balance

    @query
    def fail(self) -> None:
        raise ValueError("deliberate query failure")


def _transfer_amount(seed: int, i: int) -> int:
    return 1 + (seed * 7 + i) % 20


def _bank_with_thread_clients(backend: str, clients: int, transfers: int) -> dict:
    with QsRuntime("all", backend=backend) as rt:
        alice = rt.new_handler("alice").create(Account, 1_000)
        bob = rt.new_handler("bob").create(Account, 1_000)

        def transferrer(seed: int) -> None:
            for i in range(transfers):
                amount = _transfer_amount(seed, i)
                with rt.separate(alice, bob) as (a, b):
                    a.debit(amount)
                    b.credit(amount)

        for i in range(clients):
            rt.spawn_client(transferrer, i, name=f"t-{i}")
        rt.join_clients()
        with rt.separate(alice, bob) as (a, b):
            final = (a.read(), b.read())
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    return {"final": final, "counters": counters}


def _bank_with_async_clients(clients: int, transfers: int) -> dict:
    with QsRuntime("all", backend="async") as rt:
        alice = rt.new_handler("alice").create(Account, 1_000)
        bob = rt.new_handler("bob").create(Account, 1_000)

        async def transferrer(seed: int) -> None:
            for i in range(transfers):
                amount = _transfer_amount(seed, i)
                async with rt.separate_async(alice, bob) as (a, b):
                    await a.debit(amount)
                    await b.credit(amount)

        for i in range(clients):
            rt.spawn_async_client(transferrer, i, name=f"t-{i}")
        rt.join_clients()
        with rt.separate(alice, bob) as (a, b):
            final = (a.read(), b.read())
        counters = {name: rt.stats()[name] for name in PARITY_COUNTERS}
    return {"final": final, "counters": counters}


# ----------------------------------------------------------------------------
# the awaitable client API
# ----------------------------------------------------------------------------
class TestAwaitableApi:
    def test_commands_and_queries(self):
        with QsRuntime("all", backend="async") as rt:
            ref = rt.new_handler("acct").create(Account, 100)
            seen = []

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    await acc.credit(42)
                    seen.append(await acc.read())
                    seen.append(await acc.ask("read"))
                    await acc.send("debit", 10)
                    seen.append(await acc.read())

            rt.spawn_async_client(client)
            rt.join_clients()
            assert seen == [142, 142, 132]

    def test_sync_coalescing_applies_to_async_clients(self):
        with QsRuntime("all", backend="async") as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    await acc.credit(1)
                    # first read syncs; the two repeats are elided
                    assert (await acc.read(), await acc.read(), await acc.read()) == (1, 1, 1)

            rt.spawn_async_client(client)
            rt.join_clients()
            stats = rt.stats()
            assert stats["sync_roundtrips"] == 1
            assert stats["syncs_elided"] == 2

    def test_explicit_sync_and_function_shipping(self):
        with QsRuntime("all", backend="async") as rt:
            ref = rt.new_handler("acct").create(Account, 5)
            out = []

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    assert await acc.sync_() is True
                    assert await acc.sync_() is False  # coalesced
                    await acc.apply(lambda obj, n: obj.credit(n), 5)
                    out.append(await acc.compute(lambda obj: obj.balance * 10))

            rt.spawn_async_client(client)
            rt.join_clients()
            assert out == [100]

    def test_query_failure_propagates_through_await(self):
        caught = []
        with QsRuntime("all", backend="async") as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    try:
                        await acc.fail()
                    except ValueError as exc:
                        caught.append(str(exc))
                    # the block (and the handler) survive the failed query
                    await acc.credit(3)
                    caught.append(await acc.read())

            rt.spawn_async_client(client)
            rt.join_clients()
        assert caught == ["deliberate query failure", 3]

    def test_packaged_query_failure_under_qoq_level(self):
        # client_executed_queries is off at the qoq level, so the query is
        # packaged and the error crosses back through the awaited result box
        caught = []
        with QsRuntime("qoq", backend="async") as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            async def client() -> None:
                async with rt.separate_async(ref) as acc:
                    with pytest.raises(QueryFailedError):
                        await acc.fail()
                    caught.append(await acc.read())

            rt.spawn_async_client(client)
            rt.join_clients()
        assert caught == [0]

    def test_thread_and_coroutine_clients_coexist(self):
        with QsRuntime("all", backend="async") as rt:
            ref = rt.new_handler("acct").create(Account, 0)

            def thread_client() -> None:
                for _ in range(10):
                    with rt.separate(ref) as acc:
                        acc.credit(1)

            async def coro_client() -> None:
                for _ in range(10):
                    async with rt.separate_async(ref) as acc:
                        await acc.credit(1)

            for i in range(3):
                rt.spawn_client(thread_client, name=f"thread-{i}")
                rt.spawn_async_client(coro_client, name=f"coro-{i}")
            rt.join_clients()
            with rt.separate(ref) as acc:
                assert acc.read() == 60

    def test_runtime_event_is_awaitable(self):
        with QsRuntime("all", backend="async") as rt:
            gate = rt.event()
            order = []

            async def waiter() -> None:
                await gate.wait_async()
                order.append("woken")

            async def setter() -> None:
                order.append("setting")
                gate.set()

            rt.spawn_async_client(waiter)
            rt.spawn_async_client(setter)
            rt.join_clients()
            assert order == ["setting", "woken"]


# ----------------------------------------------------------------------------
# client-style parity: coroutines and threads count the same work
# ----------------------------------------------------------------------------
def test_async_clients_match_thread_clients_counters():
    reference = _bank_with_thread_clients("threads", clients=3, transfers=10)
    async_threads = _bank_with_thread_clients("async", clients=3, transfers=10)
    async_coros = _bank_with_async_clients(clients=3, transfers=10)
    assert async_threads == reference, "thread clients must not depend on the backend"
    assert async_coros == reference, (
        "coroutine clients must produce identical results and counters")


# ----------------------------------------------------------------------------
# fan-in scale
# ----------------------------------------------------------------------------
def test_two_thousand_coroutine_clients():
    n = 2_000
    with QsRuntime("all", backend="async") as rt:
        refs = [rt.new_handler(f"svc-{i}").create(Account, 0) for i in range(4)]

        async def client(i: int) -> None:
            ref = refs[i % len(refs)]
            async with rt.separate_async(ref) as acc:
                await acc.credit(1)
                assert await acc.read() >= 1

        for i in range(n):
            rt.spawn_async_client(client, i, name=f"c-{i}")
        rt.join_clients()
        totals = []
        for ref in refs:
            with rt.separate(ref) as acc:
                totals.append(acc.read())
        assert sum(totals) == n


# ----------------------------------------------------------------------------
# multi-loop: async:nloops spreads handlers across event-loop threads
# ----------------------------------------------------------------------------
class Napper(SeparateObject):
    def __init__(self) -> None:
        self.naps = 0

    @command
    def nap(self, seconds: float) -> None:
        time.sleep(seconds)
        self.naps += 1

    @query
    def naps_taken(self) -> int:
        return self.naps


class TestMultiLoop:
    def test_bank_parity_across_loop_counts(self):
        reference = _bank_with_thread_clients("threads", clients=3, transfers=10)
        for spec in ("async:2", "async:4"):
            result = _bank_with_thread_clients(spec, clients=3, transfers=10)
            assert result == reference, (
                f"{spec} must produce identical results and counters")

    def test_shard_replicas_pin_to_distinct_loops(self):
        with QsRuntime("all", backend="async:3") as rt:
            group = rt.sharded("accts", shards=3).create(Account, 0)
            hosts = dict(group.topology.placement)
            assert sorted(hosts.values()) == ["loop:0", "loop:1", "loop:2"]

    def test_handlers_overlap_across_loops(self):
        """Four handlers blocking 0.2 s each must overlap under async:4 —
        on one loop they would serialise to ~0.8 s of wall clock."""
        with QsRuntime("all", backend="async:4") as rt:
            refs = [rt.new_handler(f"nap-{i}").create(Napper) for i in range(4)]
            start = time.monotonic()
            for ref in refs:
                with rt.separate(ref) as n:
                    n.nap(0.2)  # async call: enqueued, not awaited
            for ref in refs:
                with rt.separate(ref) as n:
                    assert n.naps_taken() == 1
            wall = time.monotonic() - start
        assert wall < 0.6, f"naps serialised: {wall:.3f}s for 4 x 0.2s"

    def test_direct_constructor_and_validation(self):
        from repro.backends import AsyncBackend

        backend = AsyncBackend(loops=2)
        assert backend.nloops == 2
        with QsRuntime("all", backend=backend) as rt:
            ref = rt.new_handler("acct").create(Account, 5)
            with rt.separate(ref) as acc:
                acc.credit(5)
                assert acc.read() == 10
        with pytest.raises(ValueError, match="at least one"):
            AsyncBackend(loops=0)

    def test_env_var_selects_loop_count(self, monkeypatch):
        monkeypatch.setenv("REPRO_BACKEND", "async:3")
        with QsRuntime("all") as rt:
            assert rt.backend.name == "async"
            assert rt.backend.nloops == 3


# ----------------------------------------------------------------------------
# guard rails
# ----------------------------------------------------------------------------
class TestGuardRails:
    def test_async_clients_need_the_async_backend(self):
        with QsRuntime("all", backend="threads") as rt:
            with pytest.raises(ScoopError, match="backend='async'|asyncio backend"):
                AsyncClient(rt)
            with pytest.raises(ScoopError, match="asyncio backend"):
                rt.spawn_async_client(None)

    def test_async_clients_need_the_qoq_protocol(self):
        with QsRuntime("none", backend="async") as rt:
            with pytest.raises(ScoopError, match="queue-of-queues"):
                AsyncClient(rt)

    def test_async_backend_cannot_be_reattached(self):
        from repro.backends import AsyncBackend

        backend = AsyncBackend()
        with QsRuntime("all", backend=backend):
            pass
        with pytest.raises(ScoopError, match="cannot be attached twice"):
            QsRuntime("all", backend=backend)

    def test_separate_async_rejects_non_refs(self):
        from repro.errors import ReservationError

        with QsRuntime("all", backend="async") as rt:
            with pytest.raises(ReservationError, match="SeparateRef"):
                rt.separate_async(object())
            with pytest.raises(ReservationError, match="at least one"):
                rt.separate_async()


# ----------------------------------------------------------------------------
# selection plumbing end to end
# ----------------------------------------------------------------------------
def test_cli_runs_examples_on_the_async_backend(capsys):
    assert cli_main(["--backend", "async", "run", "bank-transfers",
                     "--clients", "3", "--iterations", "5"]) == 0
    out = capsys.readouterr().out
    assert "backend=async" in out and "money conserved" in out

    assert cli_main(["--backend", "async", "run", "dining-philosophers",
                     "--clients", "3", "--iterations", "4"]) == 0
    out = capsys.readouterr().out
    assert "backend=async" in out and "no deadlock" in out


def test_env_var_selects_async_backend(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "async")
    with QsRuntime("all") as rt:
        assert rt.backend.name == "async"
