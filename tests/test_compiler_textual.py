"""Tests for the textual IR printer/parser round trip and the verifier."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.compiler.builder import FunctionBuilder, fig14_loop, fig15_loop, straightline_queries
from repro.compiler.ir import (
    AsyncCallInstr,
    BasicBlock,
    CallInstr,
    Function,
    LocalInstr,
    QueryInstr,
    SyncInstr,
)
from repro.compiler.parser import parse_function, parse_functions, parse_program
from repro.compiler.printer import print_function, print_program
from repro.compiler.program import Program
from repro.compiler.sync_elision import SyncElisionPass
from repro.compiler.verify import assert_valid, verify_function, verify_program
from repro.errors import CompilerError


def _structurally_equal(a: Function, b: Function) -> bool:
    if a.name != b.name or a.entry != b.entry or set(a.blocks) != set(b.blocks):
        return False
    for name, block in a.blocks.items():
        other = b.blocks[name]
        if block.successors != other.successors:
            return False
        if [i.brief() for i in block.instructions] != [i.brief() for i in other.instructions]:
            return False
    return True


class TestPrinter:
    def test_every_instruction_kind_printable(self):
        b = FunctionBuilder("all_kinds", entry="entry")
        (
            b.block("entry")
            .sync("h")
            .async_call("h", note="push x")
            .query("h", note="read y")
            .local("t := t+1", handler="h")
            .local("pure local")
            .call("helper", readonly=True)
            .call("opaque")
            .ret()
        )
        text = print_function(b.build())
        for keyword in ("sync h", 'async h "push x"', 'query h "read y"',
                        "call helper readonly", "call opaque"):
            assert keyword in text

    def test_print_program_contains_every_function(self):
        program = Program.from_functions([fig14_loop(), fig15_loop()], name="figs")
        text = print_program(program)
        assert text.startswith("program figs")
        assert "function fig14" in text and "function fig15" in text


class TestParser:
    def test_round_trip_fig14(self):
        fn = fig14_loop()
        again = parse_function(print_function(fn))
        assert _structurally_equal(fn, again)

    def test_round_trip_program(self):
        program = Program.from_functions(
            [fig14_loop(), fig15_loop(), straightline_queries("h", 3)], name="figs"
        )
        again = parse_program(print_program(program))
        assert again.name == "figs"
        assert set(again.functions) == set(program.functions)
        for name in program.functions:
            assert _structurally_equal(program.function(name), again.function(name))

    def test_parse_quoted_notes_with_spaces(self):
        text = '''
        function f entry b0
          block b0 ->
            local "x[i] := a[i] + 1" @h_p
        '''
        fn = parse_function(text)
        (instr,) = fn.block("b0").instructions
        assert isinstance(instr, LocalInstr)
        assert instr.note == "x[i] := a[i] + 1"
        assert instr.handler == "h_p"

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment
        function f entry main

          block main ->
            # another comment
            sync h
        """
        fn = parse_function(text)
        assert fn.count_instructions(SyncInstr) == 1

    def test_optimized_function_round_trips(self):
        optimized, _ = SyncElisionPass().run(fig14_loop())
        again = parse_function(print_function(optimized))
        assert _structurally_equal(optimized, again)

    @pytest.mark.parametrize(
        "bad_text, fragment",
        [
            ("function f entry b0\n  sync h", "outside of a block"),
            ("block b0 ->\n  sync h", "outside of a function"),
            ("function f entry b0\n  block b0 ->\n    sync", "exactly one handler"),
            ("function f entry b0\n  block b0 ->\n    warp h", "unknown instruction"),
            ("function f entry b0\n  block b0 ->\n    call f banana", "unknown call flags"),
            ("function f entry missing\n  block b0 ->\n    sync h", "entry"),
            ("", "no functions"),
        ],
    )
    def test_parse_errors_are_reported(self, bad_text, fragment):
        with pytest.raises(CompilerError) as err:
            parse_functions(bad_text)
        assert fragment in str(err.value)

    def test_multiple_functions_split_correctly(self):
        text = print_function(fig14_loop()) + "\n\n" + print_function(fig15_loop())
        fns = parse_functions(text)
        assert [fn.name for fn in fns] == ["fig14", "fig15"]


class TestVerifier:
    def test_paper_examples_are_valid(self):
        assert verify_function(fig14_loop()) == []
        assert verify_function(fig15_loop()) == []

    def test_undefined_successor_detected_by_constructor(self):
        with pytest.raises(CompilerError):
            Function("broken", [BasicBlock("a", [], ["missing"])], "a")

    def test_unreachable_block_reported(self):
        fn = Function("f", [BasicBlock("a", [], []), BasicBlock("island", [], [])], "a")
        problems = verify_function(fn)
        assert any("unreachable" in p for p in problems)

    def test_empty_handler_name_reported(self):
        fn = Function("f", [BasicBlock("a", [SyncInstr("")], [])], "a")
        assert any("empty handler" in p for p in verify_function(fn))

    def test_conflicting_call_flags_reported(self):
        fn = Function("f", [BasicBlock("a", [CallInstr("g", readonly=True, readnone=True)], [])], "a")
        assert any("both readonly and readnone" in p for p in verify_function(fn))

    def test_program_verifier_flags_stale_attributes(self):
        # caller claims the callee is readnone, but the callee issues an async call
        caller = Function("caller", [BasicBlock("e", [CallInstr("writer", readnone=True)], [])], "e")
        writer = Function("writer", [BasicBlock("e", [AsyncCallInstr("h")], [])], "e")
        problems = verify_program(Program.from_functions([caller, writer]))
        assert any("flagged readnone" in p for p in problems)

    def test_assert_valid_raises_with_details(self):
        fn = Function("f", [BasicBlock("a", [SyncInstr("")], [])], "a")
        with pytest.raises(CompilerError) as err:
            assert_valid(fn)
        assert "empty handler" in str(err.value)

    def test_assert_valid_accepts_clean_program(self):
        assert_valid(Program.from_functions([fig14_loop(), fig15_loop()]))


_HANDLER_NAMES = st.sampled_from(["h", "h_p", "i_p", "worker0"])


@st.composite
def _random_functions(draw):
    """Random (but always structurally valid) IR functions."""
    n_blocks = draw(st.integers(min_value=1, max_value=5))
    names = [f"b{i}" for i in range(n_blocks)]
    blocks = []
    for name in names:
        n_instr = draw(st.integers(min_value=0, max_value=4))
        instructions = []
        for _ in range(n_instr):
            kind = draw(st.sampled_from(["sync", "async", "query", "local", "call"]))
            handler = draw(_HANDLER_NAMES)
            if kind == "sync":
                instructions.append(SyncInstr(handler))
            elif kind == "async":
                instructions.append(
                    AsyncCallInstr(handler, note=draw(st.sampled_from(["", "push", "set x"])))
                )
            elif kind == "query":
                instructions.append(QueryInstr(handler, note=draw(st.sampled_from(["", "read"]))))
            elif kind == "local":
                instructions.append(
                    LocalInstr(
                        note=draw(st.sampled_from(["", "x := 1", "a b c"])),
                        handler=draw(st.sampled_from([None, handler])),
                    )
                )
            else:
                instructions.append(
                    CallInstr(
                        draw(st.sampled_from(["helper", "compute", "ext"])),
                        readonly=draw(st.booleans()),
                    )
                )
        successors = draw(st.lists(st.sampled_from(names), min_size=0, max_size=2, unique=True))
        blocks.append(BasicBlock(name, instructions, successors))
    return Function("random_fn", blocks, "b0")


class TestRoundTripProperty:
    @given(fn=_random_functions())
    @settings(max_examples=60, deadline=None)
    def test_print_parse_round_trip_preserves_structure(self, fn):
        again = parse_function(print_function(fn))
        assert _structurally_equal(fn, again)
